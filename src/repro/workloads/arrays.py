"""Regular array workloads (the testram-style designs).

HEXT's Table 4-1 measures "a square array containing N identical cells,
where N is an even power of 2 (the array is constructed as a complete
binary tree with the leaves forming the N cells)"; the basic cell is a
single transistor formed by the overlap of diffusion and polysilicon.
:func:`transistor_array` builds exactly that structure.
"""

from __future__ import annotations

from ..cif import Layout
from ..geometry import Transform
from ..tech import DEFAULT_LAMBDA
from .builder import LayoutBuilder
from .cells import CHAIN_CELL_SIZE, build_chain_inverter_cell, build_transistor_cell

#: Transistor-cell pitch in lambda (cell is 8x8, abutted).
CELL_PITCH = 8


def transistor_array(
    n_side: int, lambda_: int = DEFAULT_LAMBDA, *, hierarchical: bool = True
) -> Layout:
    """An ``n_side`` x ``n_side`` array of one-transistor cells.

    With ``hierarchical=True`` (the default) the array is a complete
    binary tree of symbols, doubling alternately in x and y, which is the
    ideal case for a hierarchical extractor.  With ``hierarchical=False``
    every cell is called directly from the top -- same artwork, no
    exploitable structure.

    The array forms a diffusion/poly mesh: ``n_side`` poly rows crossing
    ``n_side`` diffusion columns, one transistor per cell.
    """
    if n_side < 1 or (n_side & (n_side - 1)):
        raise ValueError(f"n_side must be a power of two, got {n_side}")
    builder = LayoutBuilder(lambda_)
    cell = build_transistor_cell(builder)
    if not hierarchical:
        for i in range(n_side):
            for j in range(n_side):
                builder.top.call(cell, i * CELL_PITCH, j * CELL_PITCH)
        return builder.done()

    # Complete binary tree: level k holds 2^k cells; doubling direction
    # alternates so blocks stay near-square.
    current = cell
    width, height = CELL_PITCH, CELL_PITCH
    cells = 1
    while cells < n_side * n_side:
        parent = builder.new_symbol()
        parent.call(current, 0, 0)
        if width <= height:
            parent.call(current, width, 0)
            width *= 2
        else:
            parent.call(current, 0, height)
            height *= 2
        current = parent
        cells *= 2
    builder.top.call(current, 0, 0)
    return builder.done()


def inverter_rows(
    rows: int,
    cols: int,
    lambda_: int = DEFAULT_LAMBDA,
    *,
    row_gap: int = 2,
    shared_symbols: bool = True,
) -> Layout:
    """Rows of abutted inverter-chain cells (a shift-register block).

    Each row is an inverter chain of ``cols`` stages; rows are
    electrically independent (per-row rails).  2 transistors per cell.
    With ``shared_symbols`` a single cell symbol is reused (regular
    layout); otherwise each row gets its own row symbol but reuses the
    cell, a middle ground the chip generators build on.
    """
    builder = LayoutBuilder(lambda_)
    cell = build_chain_inverter_cell(builder)
    pitch_x, cell_h = CHAIN_CELL_SIZE
    pitch_y = cell_h + row_gap

    if shared_symbols:
        row = builder.new_symbol()
        for j in range(cols):
            row.call(cell, j * pitch_x, 0)
        for i in range(rows):
            builder.top.call(row, 0, i * pitch_y)
    else:
        for i in range(rows):
            row = builder.new_symbol()
            for j in range(cols):
                row.call(cell, j * pitch_x, 0)
            builder.top.call(row, 0, i * pitch_y)
    top = builder.top
    for i in range(rows):
        base = i * pitch_y
        top.label(f"GND", 5, base + 2, "NM")
        top.label(f"VDD", 5, base + 24, "NM")
        top.label(f"IN{i}", 1, base + 10, "NM")
        top.label(f"OUT{i}", cols * pitch_x - 3, base + 10, "NM")
    return builder.done()


def mirrored_array(
    n_side: int, lambda_: int = DEFAULT_LAMBDA
) -> Layout:
    """A transistor array where alternate columns are mirrored.

    Exercises non-identity call transforms through the whole stack (the
    mesh cell is x-symmetric, so the netlist matches the plain array).
    """
    if n_side < 1:
        raise ValueError("n_side must be positive")
    builder = LayoutBuilder(lambda_)
    cell = build_transistor_cell(builder)
    for i in range(n_side):
        for j in range(n_side):
            if i % 2:
                transform = Transform.mirror_x().then(
                    Transform.translation(
                        builder.scale((i + 1) * CELL_PITCH),
                        builder.scale(j * CELL_PITCH),
                    )
                )
                builder.top.symbol.add_call(cell.number, transform)
            else:
                builder.top.call(cell, i * CELL_PITCH, j * CELL_PITCH)
    return builder.done()
