"""The worst-case workload of section 4.

*"The worst case occurs when N horizontal poly lines intersect N vertical
diffusion lines, forming a mesh with N^2 transistors."*  2N boxes in,
N^2 devices out -- quadratic in boxes for any extractor, since every
transistor must be reported.
"""

from __future__ import annotations

from ..cif import Layout
from ..tech import DEFAULT_LAMBDA
from .builder import LayoutBuilder

#: Line pitch in lambda: 2-lambda lines on a 6-lambda grid.
LINE_WIDTH = 2
LINE_PITCH = 6


def poly_diff_mesh(n: int, lambda_: int = DEFAULT_LAMBDA) -> Layout:
    """``n`` horizontal poly lines crossing ``n`` vertical diffusion lines.

    Produces exactly ``2 n`` boxes and ``n**2`` transistors (every
    crossing is a channel; the diffusion segments between crossings are
    the sources/drains).
    """
    if n < 1:
        raise ValueError("mesh size must be positive")
    builder = LayoutBuilder(lambda_)
    span = (n - 1) * LINE_PITCH + LINE_WIDTH + 4
    top = builder.top
    for i in range(n):
        base = 2 + i * LINE_PITCH
        top.box("NP", 0, base, span, base + LINE_WIDTH)
        top.box("ND", base, 0, base + LINE_WIDTH, span)
    return builder.done()
