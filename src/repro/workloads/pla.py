"""A programmable logic array generator.

PLAs were *the* structured-logic workhorse of Mead-Conway NMOS design,
and exactly the kind of generated layout ACE's users extracted.  This
generator programs a NOR-NOR PLA from product terms:

* the **AND plane** has one horizontal product-term row per product --
  a metal line with a depletion pullup at its left end -- and a pair of
  vertical poly columns per input (true and complement rails, labeled
  ``IN<i>`` / ``NIN<i>``; the caller drives them dual-rail).  A
  programmed cell is a horizontal diffusion stub from the row down to a
  ground column, gated by the *opposite* rail of the required literal,
  so the row stays high exactly when the product term is satisfied;
* the **OR plane** is the same structure transposed: each product row
  continues rightward as poly, gating vertical diffusion stubs that pull
  the per-output node column low; the node is pulled up at the top, so
  the column carries NOR of the selected products, labeled ``NOUT<o>``
  (active-low OR, as in real NMOS PLAs before the output buffers).

:class:`PlaSpec` carries the program and computes expected logic values,
so the simulator's reading of the *extracted* netlist can be checked
against the specification -- layout, extraction, and simulation agreeing
on a truth table is the whole toolchain working at once.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cif import Layout
from ..tech import DEFAULT_LAMBDA
from .builder import LayoutBuilder

# AND-plane geometry (lambda), per input group of width 20:
#   x+0..2   row-metal contact zone (true-rail stubs)
#   x+4..6   poly true rail
#   x+8..10  ground diffusion column
#   x+12..14 poly complement rail
#   x+16..18 row-metal contact zone (complement-rail stubs)
_IN_GROUP_W = 20
#: OR-plane group width per output.
_OUT_GROUP_W = 16
#: Vertical pitch per product row.
_ROW_PITCH = 14


@dataclass(frozen=True)
class PlaSpec:
    """A PLA program: products over inputs, outputs over products.

    ``products[p]`` maps input index to the required value (True: the
    input must be 1 for the product to hold).  ``outputs[o]`` is the set
    of product indices ORed into output ``o``.
    """

    num_inputs: int
    products: tuple
    outputs: tuple

    def __post_init__(self) -> None:
        for product in self.products:
            for index in product:
                if not 0 <= index < self.num_inputs:
                    raise ValueError(f"product references input {index}")
        for terms in self.outputs:
            for p in terms:
                if not 0 <= p < len(self.products):
                    raise ValueError(f"output references product {p}")

    def product_value(self, inputs: "tuple[int, ...]") -> list[int]:
        return [
            int(all(inputs[i] == int(v) for i, v in product.items()))
            for product in self.products
        ]

    def expected(self, inputs: "tuple[int, ...]") -> list[int]:
        """Active-low outputs: NOUT[o] = NOR of the selected products."""
        values = self.product_value(inputs)
        return [
            int(not any(values[p] for p in terms)) for terms in self.outputs
        ]


def pla(
    spec: PlaSpec, lambda_: int = DEFAULT_LAMBDA
) -> Layout:
    """Generate the layout for ``spec``.

    Net labels: ``IN<i>``/``NIN<i>`` on the input rails, ``NOUT<o>`` on
    the output node columns, ``VDD``/``GND`` on the supply rails.
    """
    builder = LayoutBuilder(lambda_)
    top = builder.top
    n_in = spec.num_inputs
    n_rows = len(spec.products)
    n_out = len(spec.outputs)

    and_w = n_in * _IN_GROUP_W
    or_x0 = and_w + 4  # row metal->poly handoff zone starts here
    or_w = n_out * _OUT_GROUP_W
    rows_top = n_rows * _ROW_PITCH

    # --- product rows: metal line + left depletion pullup ------------
    for p in range(n_rows):
        y = p * _ROW_PITCH + 8
        # Row metal from the pullup contact into the OR-plane handoff.
        top.box("NM", -2, y - 1, or_x0 + 4, y + 3)
        # Pullup: VDD diffusion column (far left) -> depletion -> row.
        top.box("ND", -16, y, 2, y + 2)
        top.box("NP", -12, y - 2, -8, y + 4)  # 4-lambda gate
        top.box("NI", -13, y - 2, -7, y + 4)
        top.box("NP", -6, y, -4, y + 2)  # gate-to-row poly tie
        top.box("NB", -6, y, -4, y + 2)
        top.box("NP", -12, y + 2, -4, y + 4)  # poly bridge gate<->tie
        top.box("NC", 0, y, 2, y + 2)  # row-metal contact
        # Row handoff to OR-plane poly (spans every output's stub slot).
        top.box("NP", or_x0, y, or_x0 + 6 + or_w - 8, y + 2)
        top.box("NC", or_x0 + 1, y, or_x0 + 3, y + 2)

    # --- left VDD diffusion column with metal feed --------------------
    top.box("ND", -16, 6, -14, rows_top + 4)
    top.box("NM", -20, rows_top + 2, -10, rows_top + 6)
    top.box("NC", -16, rows_top + 2, -14, rows_top + 4)
    top.label("VDD", -15, rows_top + 5, "NM")

    # --- input rails and AND-plane ground columns ----------------------
    rail_top = rows_top + 4
    for i in range(n_in):
        x = i * _IN_GROUP_W
        top.box("NP", x + 4, -8, x + 6, rail_top)
        top.label(f"IN{i}", x + 5, -7, "NP")
        top.box("NP", x + 12, -8, x + 14, rail_top)
        top.label(f"NIN{i}", x + 13, -7, "NP")
        top.box("ND", x + 8, -4, x + 10, rail_top)

    # --- AND-plane programmed cells ------------------------------------
    for p, product in enumerate(spec.products):
        y = p * _ROW_PITCH + 8
        for i, required in product.items():
            x = i * _IN_GROUP_W
            if required:
                # Gate on the complement rail: row falls unless IN=1.
                top.box("ND", x + 8, y, x + 18, y + 2)
                top.box("NC", x + 16, y, x + 18, y + 2)
            else:
                # Gate on the true rail: row falls unless IN=0.
                top.box("ND", x + 0, y, x + 10, y + 2)
                top.box("NC", x + 0, y, x + 2, y + 2)

    # --- OR plane -------------------------------------------------------
    or_cols_x0 = or_x0 + 6
    for o in range(n_out):
        ox = or_cols_x0 + o * _OUT_GROUP_W
        # Output node: vertical metal column (crosses poly rows freely).
        top.box("NM", ox + 0, 4, ox + 2, rows_top + 10)
        top.label(f"NOUT{o}", ox + 1, 5, "NM")
        # Ground column: vertical metal, joined to the bottom GND rail.
        top.box("NM", ox + 8, -8, ox + 10, rows_top + 2)
        # Top pullup: VDD rail -> depletion -> output node.
        y = rows_top + 10
        top.box("ND", ox + 4, y - 6, ox + 6, y + 10)
        top.box("NP", ox + 2, y, ox + 8, y + 4)  # 4-lambda gate (vertical stub)
        top.box("NI", ox + 2, y - 1, ox + 8, y + 5)
        top.box("NP", ox + 4, y - 4, ox + 6, y - 2)  # tie
        top.box("NB", ox + 4, y - 4, ox + 6, y - 2)
        top.box("NP", ox + 6, y - 4, ox + 8, y + 2)  # bridge
        top.box("NC", ox + 4, y - 6, ox + 6, y - 4)  # to output node arm
        top.box("ND", ox + 0, y - 6, ox + 6, y - 4)
        top.box("NC", ox + 0, y - 6, ox + 2, y - 4)
        top.box("NC", ox + 4, y + 8, ox + 6, y + 10)  # to VDD rail

    # VDD rail across the OR-plane top.
    if n_out:
        top.box(
            "NM",
            or_cols_x0 - 2,
            rows_top + 18,
            or_cols_x0 + n_out * _OUT_GROUP_W,
            rows_top + 22,
        )
        top.label("VDD", or_cols_x0, rows_top + 20, "NM")

    # --- OR-plane programmed cells ---------------------------------------
    for o, terms in enumerate(spec.outputs):
        ox = or_cols_x0 + o * _OUT_GROUP_W
        for p in terms:
            y = p * _ROW_PITCH + 8
            # Vertical stub gated by the product-term poly row.
            top.box("ND", ox + 4, y - 4, ox + 6, y + 6)
            # Top arm to the output node column.
            top.box("ND", ox + 0, y + 4, ox + 6, y + 6)
            top.box("NC", ox + 0, y + 4, ox + 2, y + 6)
            # Bottom arm to the ground column.
            top.box("ND", ox + 4, y - 4, ox + 10, y - 2)
            top.box("NC", ox + 8, y - 4, ox + 10, y - 2)

    # --- bottom GND rail ----------------------------------------------
    right_end = or_cols_x0 + max(1, n_out) * _OUT_GROUP_W
    top.box("NM", -4, -8, right_end, -4)
    top.label("GND", 0, -6, "NM")
    for i in range(n_in):
        x = i * _IN_GROUP_W
        top.box("NC", x + 8, -4, x + 10, -2)
        top.box("NM", x + 7, -5, x + 11, -1)

    return builder.done()
