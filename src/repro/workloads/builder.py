"""Small helper for constructing layouts programmatically.

Workload generators build :class:`~repro.cif.Layout` objects directly
(rather than printing CIF text) and rely on the writer when a CIF file is
wanted.  Coordinates in the generators are in lambda; the builder scales
to centimicrons so the same cells work at any process size.
"""

from __future__ import annotations

from ..cif import Label, Layout, Symbol
from ..geometry import Box, Transform
from ..tech import DEFAULT_LAMBDA


class LayoutBuilder:
    """Builds a layout in lambda units."""

    def __init__(self, lambda_: int = DEFAULT_LAMBDA) -> None:
        self.layout = Layout()
        self.lambda_ = lambda_
        self._next_symbol = 1

    def new_symbol(self) -> "SymbolBuilder":
        number = self._next_symbol
        self._next_symbol += 1
        return SymbolBuilder(self, self.layout.define(number))

    @property
    def top(self) -> "SymbolBuilder":
        return SymbolBuilder(self, self.layout.top)

    def scale(self, value: int) -> int:
        return value * self.lambda_

    def done(self) -> Layout:
        self.layout.validate()
        return self.layout


class SymbolBuilder:
    """Adds geometry to one symbol, in lambda units."""

    def __init__(self, owner: LayoutBuilder, symbol: Symbol) -> None:
        self._owner = owner
        self.symbol = symbol

    @property
    def number(self) -> int:
        return self.symbol.number

    def box(self, layer: str, x1: int, y1: int, x2: int, y2: int) -> "SymbolBuilder":
        s = self._owner.scale
        self.symbol.add_box(layer, Box(s(x1), s(y1), s(x2), s(y2)))
        return self

    def label(
        self, name: str, x: int, y: int, layer: str | None = None
    ) -> "SymbolBuilder":
        s = self._owner.scale
        self.symbol.add_label(Label(name, s(x), s(y), layer))
        return self

    def call(
        self,
        callee: "SymbolBuilder | int",
        dx: int = 0,
        dy: int = 0,
        transform: Transform | None = None,
    ) -> "SymbolBuilder":
        s = self._owner.scale
        number = callee.number if isinstance(callee, SymbolBuilder) else callee
        placed = (transform or Transform.identity()).then(
            Transform.translation(s(dx), s(dy))
        )
        self.symbol.add_call(number, placed)
        return self
