"""Deliberately rule-violating layout snippets.

Each snippet is the minimal geometry that triggers exactly one DRC rule
(and nothing else), expressed in lambda units.  They feed three
consumers: the ``drc_violations`` golden fixture, the DRC unit tests,
and the fault-planting self-test in :mod:`repro.difftest.drcplant`,
which drops a snippet into a known-clean host layout and demands the
checker catch it.
"""

from __future__ import annotations

from ..cif import Layout
from ..drc.rules import (
    RULE_BURIED_ENCLOSURE,
    RULE_CONTACT_ENCLOSURE,
    RULE_GATE_EXTENSION,
    RULE_IMPLANT_COVERAGE,
    RULE_SPACING,
    RULE_WIDTH,
)
from ..tech import DEFAULT_LAMBDA
from .builder import LayoutBuilder

#: rule id -> boxes ``(layer, x1, y1, x2, y2)`` in lambda units.  Every
#: snippet violates exactly its own rule; widths, spacings and overhangs
#: of the surrounding geometry are kept legal.
VIOLATION_SNIPPETS: dict[str, tuple[tuple[str, int, int, int, int], ...]] = {
    # 1-lambda poly wire (minimum is 2).
    RULE_WIDTH: (("NP", 0, 0, 1, 6),),
    # Two diffusion wires 2 lambda apart (minimum is 3).
    RULE_SPACING: (
        ("ND", 0, 0, 2, 6),
        ("ND", 4, 0, 6, 6),
    ),
    # Poly gate flush with the right channel edge: no overhang.
    RULE_GATE_EXTENSION: (
        ("ND", 0, 0, 2, 6),
        ("NP", -2, 2, 2, 4),
    ),
    # Contact cut hanging one lambda outside its metal.
    RULE_CONTACT_ENCLOSURE: (
        ("NC", 0, 0, 2, 2),
        ("NM", 1, -1, 4, 3),
    ),
    # Buried window hanging one lambda outside its diffusion.
    RULE_BURIED_ENCLOSURE: (
        ("NB", 0, 0, 2, 3),
        ("ND", 1, 0, 3, 3),
        ("NP", 0, 0, 2, 3),
    ),
    # Implant covering only part of a depletion channel's margin.
    RULE_IMPLANT_COVERAGE: (
        ("ND", 0, 0, 2, 8),
        ("NP", -2, 3, 4, 5),
        ("NI", 0, 2, 4, 6),
    ),
}

#: Horizontal pitch (lambda) between planted snippets -- wide enough
#: that no same-layer spacing rule fires between neighbours.
SNIPPET_PITCH = 12


def violation_snippets_for(
    tech=None,
) -> "dict[str, tuple[tuple[str, int, int, int, int], ...]]":
    """The planted-violation table for ``tech``'s deck.

    The canonical snippets are written in the NMOS layer names; for
    another deck each snippet is rewritten through the deck's layer
    roles (diffusion, gate, metal, cut, marker, buried window) and
    restricted to the rules the deck enables.  A snippet touching a
    role the deck lacks (e.g. buried windows under CMOS) is dropped --
    its rule cannot fire there.
    """
    deck = getattr(tech, "deck", None)
    if tech is None or deck is None:
        return dict(VIOLATION_SNIPPETS)
    from ..tech import ABSENT_LAYER, scan_layers

    roles = scan_layers(tech)
    mapping: dict[str, "str | None"] = {
        "NM": roles.metal,
        "NP": roles.poly,
        "ND": roles.diff,
        "NC": roles.contact,
        "NI": None if roles.marker == ABSENT_LAYER else roles.marker,
        "NB": None if roles.buried == ABSENT_LAYER else roles.buried,
    }
    enabled = set(deck.drc.rules)
    table: dict[str, tuple] = {}
    for rule, boxes in VIOLATION_SNIPPETS.items():
        if rule not in enabled:
            continue
        mapped = []
        for layer, x1, y1, x2, y2 in boxes:
            target = mapping.get(layer, layer)
            if target is None:
                mapped = None
                break
            mapped.append((target, x1, y1, x2, y2))
        if mapped is not None:
            table[rule] = tuple(mapped)
    return table


def snippet_rules() -> tuple[str, ...]:
    """The planted rule ids, in fixture placement order."""
    return tuple(VIOLATION_SNIPPETS)


def plant_snippet(
    builder: LayoutBuilder, rule: str, dx: int = 0, dy: int = 0
) -> None:
    """Add one violation snippet to the builder's top symbol."""
    top = builder.top
    for layer, x1, y1, x2, y2 in VIOLATION_SNIPPETS[rule]:
        top.box(layer, x1 + dx, y1 + dy, x2 + dx, y2 + dy)


def drc_violations(lambda_: int = DEFAULT_LAMBDA) -> Layout:
    """A fixture layout planting every DRC violation class once.

    Snippets sit on a common baseline at :data:`SNIPPET_PITCH` so each
    stays isolated; the resulting report must contain exactly one
    diagnostic per rule id in :data:`VIOLATION_SNIPPETS`.
    """
    b = LayoutBuilder(lambda_)
    for i, rule in enumerate(VIOLATION_SNIPPETS):
        plant_snippet(b, rule, dx=i * SNIPPET_PITCH)
    return b.done()
