"""Serialize a :class:`~repro.cif.layout.Layout` back to CIF text.

The writer produces conservatively formatted CIF (explicit spaces, one
command per line, explicit ``L`` before every geometry run) that any CIF
reader -- including strict ones -- accepts.  Round-tripping through
:func:`repro.cif.parse` reproduces the same layout database, which the
test suite checks property-style.
"""

from __future__ import annotations

from io import StringIO

from ..geometry import Box, Transform
from .layout import Layout, Symbol


def write(layout: Layout) -> str:
    """Render ``layout`` as CIF text ending in ``E``."""
    out = StringIO()
    for number in sorted(layout.symbols):
        symbol = layout.symbols[number]
        out.write(f"DS {number} 1 1;\n")
        _write_symbol_body(out, symbol)
        out.write("DF;\n")
    _write_symbol_body(out, layout.top)
    out.write("E\n")
    return out.getvalue()


def write_file(layout: Layout, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(write(layout))


def _write_symbol_body(out: StringIO, symbol: Symbol) -> None:
    last_layer: str | None = None

    def select(layer: str) -> None:
        nonlocal last_layer
        if layer != last_layer:
            out.write(f"L {layer};\n")
            last_layer = layer

    for layer, box in symbol.boxes:
        select(layer)
        out.write(_box_command(box) + "\n")
    for layer, polygon in symbol.polygons:
        select(layer)
        coords = " ".join(f"{x} {y}" for x, y in polygon.vertices)
        out.write(f"P {coords};\n")
    for layer, width, points in symbol.wires:
        select(layer)
        coords = " ".join(f"{x} {y}" for x, y in points)
        out.write(f"W {width} {coords};\n")
    for call in symbol.calls:
        out.write(_call_command(call.symbol, call.transform) + "\n")
    for label in symbol.labels:
        suffix = f" {label.layer}" if label.layer else ""
        out.write(f"94 {label.name} {label.x} {label.y}{suffix};\n")


def _box_command(box: Box) -> str:
    cx2, cy2 = box.xmin + box.xmax, box.ymin + box.ymax
    if cx2 % 2 or cy2 % 2:
        # Centers off the integer grid cannot be expressed by B; emit an
        # equivalent 4-point polygon instead.
        return (
            f"P {box.xmin} {box.ymin} {box.xmax} {box.ymin} "
            f"{box.xmax} {box.ymax} {box.xmin} {box.ymax};"
        )
    return f"B {box.width} {box.height} {cx2 // 2} {cy2 // 2};"


def _call_command(symbol: int, transform: Transform) -> str:
    """Emit a call; the orientation is decomposed into M/R + T parts."""
    parts: list[str] = []
    a, b, c, d = transform.orientation
    det = a * d - b * c
    if det < 0:
        parts.append("M X")
        # After M X the remaining orientation is (-a, -b, c, d) applied
        # second; compose to find the rotation that completes it.
        a, b = -a, -b
    # (a, b) is the image of the +x axis under the remaining rotation.
    if (a, b) != (1, 0):
        parts.append(f"R {a} {b}")
    if transform.dx or transform.dy:
        parts.append(f"T {transform.dx} {transform.dy}")
    body = (" " + " ".join(parts)) if parts else ""
    return f"C {symbol}{body};"
