"""CIF (Caltech Intermediate Form) substrate: lexer, parser, writer,
and the in-memory layout database."""

from .errors import CifError, CifSemanticError, CifSyntaxError
from .layout import TOP_SYMBOL, Call, Label, Layout, Symbol
from .lexer import Command, tokenize
from .parser import parse, parse_file
from .writer import write, write_file

__all__ = [
    "TOP_SYMBOL",
    "Call",
    "CifError",
    "CifSemanticError",
    "CifSyntaxError",
    "Command",
    "Label",
    "Layout",
    "Symbol",
    "parse",
    "parse_file",
    "tokenize",
    "write",
    "write_file",
]
