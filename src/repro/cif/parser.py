"""CIF 2.0 parser: command stream to :class:`~repro.cif.layout.Layout`.

Supported commands (Mead & Conway, section 4.5, plus the CMU ``94`` name
extension from Sproull's "Names in CIF"):

    DS n [a b];  DF;          symbol definition with distance scale a/b
    C n T.. M.. R..;          symbol call under a transform list
    L name;                   select mask layer
    B len wid cx cy [dx dy];  box, optionally with a direction vector
    P x1 y1 x2 y2 ...;        polygon
    W w x1 y1 x2 y2 ...;      wire of width w
    R d cx cy;                roundflash (approximated by a square)
    94 name x y [layer];      net name label
    0..9 ...;                 other user extensions (ignored)
    E                         end

Boxes with a non-axis direction vector and roundflashes are approximated
as the paper's front-end does: snapped / fractured to manhattan boxes.
"""

from __future__ import annotations

from ..geometry import Box, Polygon, Transform
from .errors import CifSemanticError, CifSyntaxError
from .layout import Label, Layout, Symbol
from .lexer import Command, tokenize


def parse(text: str) -> Layout:
    """Parse CIF text into a validated :class:`Layout`."""
    return _Parser().parse(tokenize(text))


def parse_file(path: str) -> Layout:
    with open(path) as handle:
        return parse(handle.read())


class _Parser:
    def __init__(self) -> None:
        self.layout = Layout()
        self.current: Symbol = self.layout.top
        self.in_definition = False
        self.scale_num = 1
        self.scale_den = 1
        self.layer: str | None = None

    # -- helpers ---------------------------------------------------------

    def _scaled(self, value: int) -> int:
        if self.scale_num == self.scale_den:
            return value
        scaled, rem = divmod(value * self.scale_num, self.scale_den)
        if rem:
            raise CifSemanticError(
                f"distance {value} does not scale to an integer by "
                f"{self.scale_num}/{self.scale_den}"
            )
        return scaled

    def _require_layer(self, command: Command) -> str:
        if self.layer is None:
            raise CifSemanticError(
                f"geometry command before any L command: {command.text!r}"
            )
        return self.layer

    # -- driver ----------------------------------------------------------

    def parse(self, commands: list[Command]) -> Layout:
        handlers = {
            "D": self._definition,
            "C": self._call,
            "L": self._layer,
            "B": self._box,
            "P": self._polygon,
            "W": self._wire,
            "R": self._roundflash,
            "94": self._label,
        }
        for command in commands:
            if command.letter == "E":
                break
            handler = handlers.get(command.letter)
            if handler is not None:
                handler(command)
            elif command.letter.isdigit():
                continue  # other user extensions are legal and ignored
            else:
                raise CifSyntaxError(
                    f"unknown command {command.text!r}", command.position
                )
        if self.in_definition:
            raise CifSemanticError("DS without matching DF at end of file")
        self.layout.validate()
        return self.layout

    # -- command handlers --------------------------------------------------

    def _definition(self, command: Command) -> None:
        kind = command.text[1].upper() if len(command.text) > 1 else ""
        if kind == "S":
            if self.in_definition:
                raise CifSemanticError("nested DS is not permitted")
            values = command.integers()
            if not values:
                raise CifSyntaxError("DS needs a symbol number", command.position)
            number = values[0]
            self.scale_num = values[1] if len(values) > 1 else 1
            self.scale_den = values[2] if len(values) > 2 else 1
            if self.scale_num <= 0 or self.scale_den <= 0:
                raise CifSemanticError(f"bad DS scale {self.scale_num}/{self.scale_den}")
            self.current = self.layout.define(number)
            self.in_definition = True
            # Layer selection persists across symbols in CIF, but relying
            # on that is fragile; ACE's front-end resets it per symbol and
            # our writer always emits an explicit L.
            self.layer = None
        elif kind == "F":
            if not self.in_definition:
                raise CifSemanticError("DF without matching DS")
            self.current = self.layout.top
            self.in_definition = False
            self.scale_num = self.scale_den = 1
            self.layer = None
        elif kind == "D":
            # DD n: delete definitions -- used by incremental editors,
            # not by designs ACE consumes.
            raise CifSemanticError("DD (delete definition) is not supported")
        else:
            raise CifSyntaxError(f"bad D command {command.text!r}", command.position)

    def _call(self, command: Command) -> None:
        text = command.text
        values_iter = iter(_tokens_after(text, 1))
        tokens = list(values_iter)
        if not tokens or not _is_int(tokens[0]):
            raise CifSyntaxError("C needs a symbol number", command.position)
        symbol = int(tokens[0])
        transform = Transform.identity()
        i = 1
        while i < len(tokens):
            op = tokens[i].upper()
            if op == "T":
                if i + 2 >= len(tokens):
                    raise CifSyntaxError("T needs two integers", command.position)
                dx, dy = int(tokens[i + 1]), int(tokens[i + 2])
                transform = transform.then(
                    Transform.translation(self._scaled(dx), self._scaled(dy))
                )
                i += 3
            elif op == "M":
                if i + 1 >= len(tokens):
                    raise CifSyntaxError("M needs an axis", command.position)
                axis = tokens[i + 1].upper()
                if axis == "X":
                    transform = transform.then(Transform.mirror_x())
                elif axis == "Y":
                    transform = transform.then(Transform.mirror_y())
                else:
                    raise CifSyntaxError(f"bad mirror axis {axis!r}", command.position)
                i += 2
            elif op == "R":
                if i + 2 >= len(tokens):
                    raise CifSyntaxError("R needs two integers", command.position)
                rx, ry = int(tokens[i + 1]), int(tokens[i + 2])
                transform = transform.then(Transform.rotation(*_snap_direction(rx, ry)))
                i += 3
            else:
                raise CifSyntaxError(
                    f"bad transform token {tokens[i]!r}", command.position
                )
        self.current.add_call(symbol, transform)

    def _layer(self, command: Command) -> None:
        tokens = _tokens_after(command.text, 1)
        if not tokens:
            raise CifSyntaxError("L needs a layer name", command.position)
        self.layer = tokens[0].upper()

    def _box(self, command: Command) -> None:
        layer = self._require_layer(command)
        values = [self._scaled(v) for v in command.integers()]
        if len(values) not in (4, 6):
            raise CifSyntaxError(
                f"B needs 4 or 6 integers, got {len(values)}", command.position
            )
        length, width, cx, cy = values[:4]
        if len(values) == 6:
            dx, dy = _snap_direction(values[4], values[5])
            if dy != 0:  # direction along y swaps length and width
                length, width = width, length
        self.current.add_box(layer, Box.from_center(length, width, cx, cy))

    def _polygon(self, command: Command) -> None:
        layer = self._require_layer(command)
        values = [self._scaled(v) for v in command.integers()]
        if len(values) < 6 or len(values) % 2:
            raise CifSyntaxError("P needs at least 3 coordinate pairs", command.position)
        points = list(zip(values[0::2], values[1::2]))
        self.current.add_polygon(layer, Polygon.from_points(points))

    def _wire(self, command: Command) -> None:
        layer = self._require_layer(command)
        values = [self._scaled(v) for v in command.integers()]
        if len(values) < 3 or (len(values) - 1) % 2:
            raise CifSyntaxError("W needs a width and coordinate pairs", command.position)
        width = values[0]
        points = tuple(zip(values[1::2], values[2::2]))
        self.current.add_wire(layer, width, points)

    def _roundflash(self, command: Command) -> None:
        layer = self._require_layer(command)
        values = [self._scaled(v) for v in command.integers()]
        if len(values) != 3:
            raise CifSyntaxError("R needs diameter and center", command.position)
        diameter, cx, cy = values
        # The front-end approximates flashes by their bounding square;
        # flashes are rare (pads) and the approximation only widens them.
        self.current.add_box(layer, Box.from_center(diameter, diameter, cx, cy))

    def _label(self, command: Command) -> None:
        tokens = _tokens_after(command.text, 2)
        if len(tokens) < 3:
            raise CifSyntaxError("94 needs name, x and y", command.position)
        name = tokens[0]
        try:
            x, y = self._scaled(int(tokens[1])), self._scaled(int(tokens[2]))
        except ValueError:
            raise CifSyntaxError(
                f"94 coordinates must be integers: {command.text!r}",
                command.position,
            ) from None
        layer = tokens[3].upper() if len(tokens) > 3 else None
        self.current.add_label(Label(name, x, y, layer))


def _tokens_after(text: str, skip_chars: int) -> list[str]:
    return text[skip_chars:].replace(",", " ").split()


def _is_int(token: str) -> bool:
    return token.lstrip("-").isdigit() and token.lstrip("-") != ""


def _snap_direction(dx: int, dy: int) -> tuple[int, int]:
    """Snap a CIF direction vector to the nearest axis.

    ACE handles only manhattan orientations after fracturing; off-axis
    directions (legal CIF) are snapped to the dominant component, which
    matches how the original front-end rasterized rotated boxes.
    """
    if dx == 0 and dy == 0:
        return (1, 0)
    if abs(dx) >= abs(dy):
        return (1 if dx > 0 else -1, 0)
    return (0, 1 if dy > 0 else -1)
