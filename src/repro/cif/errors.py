"""CIF error types."""

from __future__ import annotations


class CifError(Exception):
    """Base class for CIF parsing and semantic errors."""


class CifSyntaxError(CifError):
    """Raised when the CIF text cannot be tokenized or parsed.

    Carries the byte position so tools can point at the offending command.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class CifSemanticError(CifError):
    """Raised for structurally valid CIF that violates semantics
    (undefined symbols, nested DS, calls forming a cycle, ...)."""
