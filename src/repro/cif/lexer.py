"""CIF 2.0 tokenizer.

CIF is forgiving about separators: ``B4 2 1 3;``, ``B 4 2 1 3 ;`` and
``Box length 4 width 2 at 1 3;`` all mean the same thing -- any run of
characters that is not a digit, ``-``, ``(``, ``)`` or ``;`` separates
numbers, and the first letter of a command is what selects it.  The lexer
therefore produces a stream of raw *commands*: the command letter(s), the
signed integers that follow, and (for ``L``, ``9`` and ``94``) the bare
words, with comments stripped.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import CifSyntaxError


@dataclass(frozen=True, slots=True)
class Command:
    """One semicolon-terminated CIF command.

    Attributes:
        letter: the selecting character ("B", "P", "W", "L", "D", "C",
            "E", or a digit for user extensions).
        text: the raw command text (letter included, ``;`` excluded).
        position: byte offset of the command start, for error messages.
    """

    letter: str
    text: str
    position: int

    def integers(self) -> list[int]:
        """All signed integers in the command, in order of appearance.

        CIF's definition of a number is a digit string; ``-`` directly
        before a digit string negates it.
        """
        values: list[int] = []
        i = 0
        text = self.text
        n = len(text)
        while i < n:
            ch = text[i]
            if ch.isdigit() or (
                ch == "-" and i + 1 < n and text[i + 1].isdigit()
            ):
                j = i + 1
                while j < n and text[j].isdigit():
                    j += 1
                values.append(int(text[i:j]))
                i = j
            else:
                i += 1
        return values

    def words(self) -> list[str]:
        """Whitespace-separated fields after the command letter(s).

        Useful for symbolic commands (``L`` layer names, ``94`` labels)
        when inspecting a token stream directly.
        """
        skip = 2 if self.letter == "94" else len(self.letter)
        return self.text[skip:].split()


def _strip_comments(text: str) -> str:
    """Replace (possibly nested) parenthesized comments with spaces."""
    out: list[str] = []
    depth = 0
    for ch in text:
        if ch == "(":
            depth += 1
            out.append(" ")
        elif ch == ")":
            if depth == 0:
                raise CifSyntaxError("unbalanced ')' in CIF comment")
            depth -= 1
            out.append(" ")
        else:
            out.append(ch if depth == 0 else " ")
    if depth != 0:
        raise CifSyntaxError("unterminated CIF comment")
    return "".join(out)


def tokenize(text: str) -> list[Command]:
    """Split CIF text into commands.

    Stops at the ``E`` (end) command; trailing garbage after ``E`` is
    ignored per the CIF specification.  Raises if no ``E`` terminates the
    file, matching strict readers.
    """
    text = _strip_comments(text)
    commands: list[Command] = []
    pos = 0
    n = len(text)
    saw_end = False
    while pos < n:
        while pos < n and (text[pos].isspace() or text[pos] == ";"):
            pos += 1
        if pos >= n:
            break
        start = pos
        letter = text[pos].upper()
        if letter == "E":
            # E need not be semicolon-terminated.
            commands.append(Command("E", "E", start))
            saw_end = True
            break
        end = text.find(";", pos)
        if end == -1:
            raise CifSyntaxError("command not terminated by ';'", start)
        body = text[start:end].strip()
        if not body:
            pos = end + 1
            continue
        first = body[0].upper()
        if first == "9" and len(body) > 1 and body[1] == "4":
            letter_key = "94"
        elif first.isdigit():
            letter_key = first
        elif first.isalpha():
            letter_key = first
        else:
            raise CifSyntaxError(f"unrecognized command start {body[0]!r}", start)
        commands.append(Command(letter_key, body, start))
        pos = end + 1
    if not saw_end:
        raise CifSyntaxError("CIF file has no 'E' end command")
    return commands
