"""The in-memory layout database built by the CIF parser.

A :class:`Layout` holds a set of :class:`Symbol` definitions plus a
distinguished *top* symbol collecting the commands that appear outside any
``DS``/``DF`` pair.  Geometry is stored as parsed (boxes kept as boxes,
polygons and wires unfractured) so the front-end can decide fracturing
resolution; shapes carry their CIF layer name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import Box, Polygon, Transform, fracture_polygon, fracture_wire
from .errors import CifSemanticError

#: Symbol number used internally for top-level (outside-DS) content.
TOP_SYMBOL = -1


@dataclass(frozen=True, slots=True)
class Call:
    """An instance of another symbol under a transform."""

    symbol: int
    transform: Transform


@dataclass(frozen=True, slots=True)
class Label:
    """A ``94 name x y [layer]`` annotation naming the net at a point."""

    name: str
    x: int
    y: int
    layer: str | None = None


@dataclass
class Symbol:
    """One CIF symbol: geometry per layer, calls, and labels."""

    number: int
    name: str | None = None
    boxes: list[tuple[str, Box]] = field(default_factory=list)
    polygons: list[tuple[str, Polygon]] = field(default_factory=list)
    wires: list[tuple[str, int, tuple[tuple[int, int], ...]]] = field(
        default_factory=list
    )
    calls: list[Call] = field(default_factory=list)
    labels: list[Label] = field(default_factory=list)

    def add_box(self, layer: str, box: Box) -> None:
        self.boxes.append((layer, box))

    def add_polygon(self, layer: str, polygon: Polygon) -> None:
        self.polygons.append((layer, polygon))

    def add_wire(
        self, layer: str, width: int, points: "tuple[tuple[int, int], ...]"
    ) -> None:
        self.wires.append((layer, width, points))

    def add_call(self, symbol: int, transform: Transform) -> None:
        self.calls.append(Call(symbol, transform))

    def add_label(self, label: Label) -> None:
        self.labels.append(label)

    def is_leaf(self) -> bool:
        """True when the symbol contains no calls (geometry only)."""
        return not self.calls

    def shape_count(self) -> int:
        return len(self.boxes) + len(self.polygons) + len(self.wires)

    def fractured_boxes(self, resolution: int = 50) -> list[tuple[str, Box]]:
        """All geometry in this symbol reduced to boxes (local coords)."""
        out = list(self.boxes)
        for layer, polygon in self.polygons:
            out.extend((layer, b) for b in fracture_polygon(polygon, resolution))
        for layer, width, points in self.wires:
            out.extend(
                (layer, b) for b in fracture_wire(list(points), width, resolution)
            )
        return out


@dataclass
class Layout:
    """A parsed CIF design: symbol table plus top-level content."""

    symbols: dict[int, Symbol] = field(default_factory=dict)
    top: Symbol = field(default_factory=lambda: Symbol(TOP_SYMBOL))

    def define(self, number: int) -> Symbol:
        if number in self.symbols:
            raise CifSemanticError(f"symbol {number} defined twice")
        symbol = Symbol(number)
        self.symbols[number] = symbol
        return symbol

    def symbol(self, number: int) -> Symbol:
        if number == TOP_SYMBOL:
            return self.top
        try:
            return self.symbols[number]
        except KeyError:
            raise CifSemanticError(f"call of undefined symbol {number}") from None

    def validate(self) -> None:
        """Check that all calls resolve and the call graph is acyclic."""
        state: dict[int, int] = {}  # 0 visiting, 1 done

        def visit(number: int) -> None:
            mark = state.get(number)
            if mark == 1:
                return
            if mark == 0:
                raise CifSemanticError(f"recursive symbol call at {number}")
            state[number] = 0
            for call in self.symbol(number).calls:
                if call.symbol != TOP_SYMBOL and call.symbol not in self.symbols:
                    raise CifSemanticError(
                        f"symbol {number} calls undefined symbol {call.symbol}"
                    )
                visit(call.symbol)
            state[number] = 1

        visit(TOP_SYMBOL)

    def total_shapes(self) -> int:
        """Shape count over all definitions (not instances)."""
        return self.top.shape_count() + sum(
            s.shape_count() for s in self.symbols.values()
        )
