"""Interval-set algebra on disjoint, sorted ``(x1, x2)`` span lists.

The scanline hands the DRC per-layer active lists that are already
disjoint and sorted by ``x1``; every rule below reduces to intersection,
subtraction, and overlap queries over such lists.  All helpers are
single merged sweeps -- no quadratic pairing.
"""

from __future__ import annotations

Span = "tuple[int, int]"


def intersect_spans(
    a: list[tuple[int, int]], b: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Positive-length overlaps of two disjoint sorted span lists."""
    out: list[tuple[int, int]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            out.append((lo, hi))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def subtract_spans(
    a: list[tuple[int, int]], holes: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Portions of ``a`` not covered by ``holes``."""
    out: list[tuple[int, int]] = []
    j = 0
    for x1, x2 in a:
        pos = x1
        while j < len(holes) and holes[j][1] <= pos:
            j += 1
        k = j
        while k < len(holes) and holes[k][0] < x2:
            h1, h2 = holes[k]
            if h1 > pos:
                out.append((pos, h1))
            if h2 > pos:
                pos = h2
            if pos >= x2:
                break
            k += 1
        if pos < x2:
            out.append((pos, x2))
    return out


def union_spans(
    a: list[tuple[int, int]], b: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Merged union (abutting spans coalesce)."""
    merged: list[tuple[int, int]] = []
    i = j = 0
    while i < len(a) or j < len(b):
        if j >= len(b) or (i < len(a) and a[i][0] <= b[j][0]):
            span = a[i]
            i += 1
        else:
            span = b[j]
            j += 1
        if merged and span[0] <= merged[-1][1]:
            if span[1] > merged[-1][1]:
                merged[-1] = (merged[-1][0], span[1])
        else:
            merged.append(span)
    return merged


def overlaps_any(
    spans: list[tuple[int, int]], x1: int, x2: int
) -> bool:
    """True if ``(x1, x2)`` has positive overlap with any span."""
    for s1, s2 in spans:
        if s1 >= x2:
            return False
        if s2 > x1:
            return True
    return False


def span_containing(
    spans: list[tuple[int, int]], x: int
) -> "tuple[int, int] | None":
    """The span with ``x1 <= x < x2``, if any (linear from bisect)."""
    lo, hi = 0, len(spans)
    while lo < hi:
        mid = (lo + hi) // 2
        if spans[mid][0] <= x:
            lo = mid + 1
        else:
            hi = mid
    if lo and spans[lo - 1][1] > x:
        return spans[lo - 1]
    return None
