"""Streaming NMOS design-rule checking.

The DRC is a second consumer of the extractor's scanline strip
decomposition (:class:`~repro.core.scanline.StripConsumer`): attach a
:class:`DrcChecker` to :func:`~repro.core.extractor.extract_report` and
circuit extraction and rule checking share one sorted sweep over the
geometry.  :func:`run_drc` is the convenience wrapper for callers that
only want the report.
"""

from __future__ import annotations

from ..cif import Layout, parse
from ..core.extractor import extract_report
from ..diagnostics import CheckReport, SourceIndex
from ..tech import NMOS, Technology
from .checker import DrcChecker
from .rules import (
    ALL_RULES,
    RULE_BURIED_ENCLOSURE,
    RULE_CONTACT_ENCLOSURE,
    RULE_GATE_EXTENSION,
    RULE_HELP,
    RULE_IMPLANT_COVERAGE,
    RULE_SPACING,
    RULE_WIDTH,
    LambdaRules,
    default_rules,
    help_for,
    rules_for,
)

__all__ = [
    "ALL_RULES",
    "RULE_BURIED_ENCLOSURE",
    "RULE_CONTACT_ENCLOSURE",
    "RULE_GATE_EXTENSION",
    "RULE_HELP",
    "RULE_IMPLANT_COVERAGE",
    "RULE_SPACING",
    "RULE_WIDTH",
    "DrcChecker",
    "LambdaRules",
    "default_rules",
    "help_for",
    "rules_for",
    "run_drc",
]


def run_drc(
    source: "str | Layout",
    tech: Technology | None = None,
    *,
    rules: LambdaRules | None = None,
    enabled: "frozenset[str] | None" = None,
    resolution: int = 50,
    attribute: bool = True,
    artifact: "str | None" = None,
) -> CheckReport:
    """Design-rule check a layout in one scanline pass.

    Args:
        source: CIF text or a parsed :class:`Layout`.
        tech: process rules; defaults to standard NMOS.
        rules: lambda deck; defaults to :func:`rules_for` -- the
            technology deck's dimensional section.
        enabled: restrict checking to these rule ids (None = all).
        resolution: fracture resolution for non-manhattan geometry.
        attribute: map violations back to the CIF symbols whose
            expansion produced the artwork.
        artifact: name recorded on the report (typically the file path).

    Returns:
        A sorted :class:`CheckReport` of ``tool="drc"`` diagnostics.
    """
    tech = tech or NMOS()
    layout = parse(source) if isinstance(source, str) else source
    checker = DrcChecker(tech, rules or rules_for(tech), enabled=enabled)
    extract_report(
        layout, tech, resolution=resolution, strip_consumers=(checker,)
    )
    report = checker.report(artifact=artifact)
    if attribute and report.diagnostics:
        report = SourceIndex(layout, resolution=resolution).attribute(report)
    return report
