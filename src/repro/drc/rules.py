"""The NMOS lambda-rule deck.

Mead & Conway's composition rules (chapter 2), parameterized by lambda
so one deck serves any process scale.  A few values are deliberately
relaxed from the textbook numbers to match the composition style of this
repository's canonical cells (see ``docs/STATIC_ANALYSIS.md`` for the
deviations and their rationale); the deck is a dataclass precisely so a
stricter variant is one ``replace()`` away.

Rule identifiers are stable strings -- they key golden snapshots,
baseline suppression files, and SARIF rule metadata, so changing one is
a breaking change to every consumer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..tech import DEFAULT_LAMBDA

# Stable rule identifiers.
RULE_WIDTH = "drc.width"
RULE_SPACING = "drc.spacing"
RULE_GATE_EXTENSION = "drc.gate-extension"
RULE_CONTACT_ENCLOSURE = "drc.contact-enclosure"
RULE_BURIED_ENCLOSURE = "drc.buried-enclosure"
RULE_IMPLANT_COVERAGE = "drc.implant-coverage"

ALL_RULES: tuple[str, ...] = (
    RULE_WIDTH,
    RULE_SPACING,
    RULE_GATE_EXTENSION,
    RULE_CONTACT_ENCLOSURE,
    RULE_BURIED_ENCLOSURE,
    RULE_IMPLANT_COVERAGE,
)

#: One-line help per rule, surfaced by ``repro-lint --list-rules`` and
#: embedded as SARIF rule descriptions.
RULE_HELP: dict[str, str] = {
    RULE_WIDTH: "region narrower than the layer's minimum width",
    RULE_SPACING: "same-layer regions closer than the minimum spacing",
    RULE_GATE_EXTENSION: (
        "poly or diffusion does not extend past the channel edge"
    ),
    RULE_CONTACT_ENCLOSURE: "contact cut not covered by metal",
    RULE_BURIED_ENCLOSURE: (
        "buried window not covered by diffusion, or never overlapping poly"
    ),
    RULE_IMPLANT_COVERAGE: (
        "depletion implant does not cover its channel with margin"
    ),
}


@dataclass(frozen=True)
class LambdaRules:
    """Minimum dimensions in lambda units.

    ``min_width`` / ``min_spacing`` are keyed by CIF layer name; layers
    absent from a map are simply not checked for that rule.
    """

    lambda_: int = DEFAULT_LAMBDA
    min_width: dict[str, int] = field(
        default_factory=lambda: {
            "ND": 2,
            "NP": 2,
            "NM": 3,
            "NC": 2,
            "NB": 2,
            "NI": 2,
        }
    )
    min_spacing: dict[str, int] = field(
        default_factory=lambda: {
            "ND": 3,
            "NP": 2,
            "NM": 1,
            "NC": 1,
            "NB": 2,
            "NI": 2,
        }
    )
    #: Poly (or diffusion) overhang required beyond a channel edge.
    gate_extension: int = 1
    #: Extra metal required around a contact cut (0 = full coverage).
    contact_margin: int = 0
    #: Extra diffusion required around a buried window (0 = coverage).
    buried_margin: int = 0
    #: Implant overhang required around a depletion channel.
    implant_margin: int = 1

    def width_cm(self, layer: str) -> int:
        """Minimum width for ``layer`` in centimicrons (0 = unchecked)."""
        return self.min_width.get(layer, 0) * self.lambda_

    def spacing_cm(self, layer: str) -> int:
        """Minimum spacing for ``layer`` in centimicrons (0 = unchecked)."""
        return self.min_spacing.get(layer, 0) * self.lambda_

    @property
    def gate_extension_cm(self) -> int:
        return self.gate_extension * self.lambda_

    @property
    def contact_margin_cm(self) -> int:
        return self.contact_margin * self.lambda_

    @property
    def buried_margin_cm(self) -> int:
        return self.buried_margin * self.lambda_

    @property
    def implant_margin_cm(self) -> int:
        return self.implant_margin * self.lambda_


def default_rules(lambda_: int = DEFAULT_LAMBDA) -> LambdaRules:
    """The standard deck at the given lambda."""
    return LambdaRules(lambda_=lambda_)


def rules_for(tech: object) -> LambdaRules:
    """Build the LambdaRules a Technology's deck declares.

    Technologies compiled from a deck get that deck's dimensional
    section verbatim; hand-built (deckless) Technology objects fall
    back to the historical NMOS defaults at their lambda.
    """
    deck = getattr(tech, "deck", None)
    lambda_ = getattr(tech, "lambda_", DEFAULT_LAMBDA)
    if deck is None:
        return default_rules(lambda_)
    return LambdaRules(
        lambda_=deck.lambda_,
        min_width=dict(deck.drc.min_width),
        min_spacing=dict(deck.drc.min_spacing),
        gate_extension=deck.drc.gate_extension,
        contact_margin=deck.drc.contact_margin,
        buried_margin=deck.drc.buried_margin,
        implant_margin=deck.drc.marker_margin,
    )


def help_for(tech: object = None) -> dict[str, str]:
    """Rule help for ``--list-rules`` and SARIF: the global catalog,
    overlaid with any deck-specific help entries."""
    merged = dict(RULE_HELP)
    deck = getattr(tech, "deck", None)
    if deck is not None:
        merged.update(deck.drc.help)
    return merged
