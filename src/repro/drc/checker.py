"""The streaming design-rule checker.

:class:`DrcChecker` is a :class:`~repro.core.scanline.StripConsumer`:
it rides the extractor's one sorted sweep and sees each strip's
per-layer active spans exactly once, top to bottom.  Every rule is
phrased against that stream:

* **width / spacing (x)** -- direct span arithmetic inside each strip.
* **width / spacing (y)** -- vertical runs are tracked by inheriting a
  "top" per span across strips; a run that dies short of its minimum
  height is flagged, and dead pieces go to a distance-pruned graveyard
  that newborn spans below are checked against.
* **gate extension** -- horizontal overhang is read off the strip's
  poly/diffusion spans at each channel edge; vertical overhang uses a
  bounded history of recent strips (birth edges look up) and a pending
  queue that later strips consume (death edges look down).  Buried
  windows need no special case: poly and diffusion are both present
  through a buried hole, so the overhang test passes there by
  construction.
* **enclosure / coverage** -- contact cuts against metal, buried
  windows against diffusion, and implanted channels against the
  implant mask are per-strip coverage subtractions; the implant rule
  additionally demands the margin above births and below deaths.

Per-strip flag boxes are merged into connected regions at the end so a
tall violation reports once, not once per strip.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..core.scanline import StripConsumer
from ..diagnostics import CheckReport, Diagnostic, Severity
from ..tech import ABSENT_LAYER, NMOS, Technology, scan_layers
from .rules import (
    ALL_RULES,
    RULE_BURIED_ENCLOSURE,
    RULE_CONTACT_ENCLOSURE,
    RULE_GATE_EXTENSION,
    RULE_IMPLANT_COVERAGE,
    RULE_SPACING,
    RULE_WIDTH,
    LambdaRules,
    rules_for,
)
from .spans import (
    intersect_spans,
    overlaps_any,
    span_containing,
    subtract_spans,
    union_spans,
)

Span = tuple[int, int]
FlagBox = tuple[int, int, int, int]

#: Above this many raw flag boxes per (rule, layer, message) group the
#: exact connected-region merge (quadratic in group size) is replaced by
#: one bounding-box diagnostic.  Real violations produce a handful of
#: boxes; only pathological generated layouts get near the cap.
_MERGE_CAP = 4000


@dataclass
class _Pending:
    """A downward requirement: ``base`` x-ranges below ``y_edge`` must be
    covered by at least one of the ``ok`` layers for ``total`` more
    vertical centimicrons."""

    rule: str
    layer: str
    message: str
    y_edge: int
    total: int
    need: int
    ok: dict[str, list[Span]]
    base: list[Span]


@dataclass
class _LayerState:
    """Cross-strip state for one checked layer."""

    prev: list[Span] = field(default_factory=list)
    tops: list[int] = field(default_factory=list)
    #: buried only: whether the run has overlapped poly anywhere yet.
    live: list[bool] = field(default_factory=list)
    #: dead pieces (x1, x2, y_death) awaiting the spacing-y check.
    grave: list[tuple[int, int, int]] = field(default_factory=list)


class DrcChecker(StripConsumer):
    """Streaming lambda-rule checker over the scanline strip feed."""

    def __init__(
        self,
        tech: Technology | None = None,
        rules: LambdaRules | None = None,
        *,
        enabled: "frozenset[str] | None" = None,
    ) -> None:
        self.tech = tech or NMOS()
        self.rules = rules or rules_for(self.tech)
        self.enabled = enabled  # None = every deck-enabled rule
        #: rules this checker actually flags: the deck's enabled set
        #: (all rules for deckless technologies), optionally narrowed
        #: by the caller's ``enabled`` filter.
        deck = self.tech.deck
        deck_rules = (
            frozenset(deck.drc.rules)
            if deck is not None
            else frozenset(ALL_RULES)
        )
        self._active = (
            deck_rules if enabled is None else deck_rules & enabled
        )

        roles = scan_layers(self.tech)
        self._poly = roles.poly
        self._diff = roles.diff
        self._metal = roles.metal
        self._contact = roles.contact
        self._implant = roles.marker
        self._buried = roles.buried
        #: all layers under width/spacing bookkeeping, fixed order.
        self._layers: tuple[str, ...] = tuple(
            name
            for name in dict.fromkeys(
                (
                    self._diff,
                    self._poly,
                    self._metal,
                    self._contact,
                    self._buried,
                    self._implant,
                )
            )
            if name != ABSENT_LAYER
        )
        self._state: dict[str, _LayerState] = {
            name: _LayerState() for name in self._layers
        }

        r = self.rules
        self._width = {name: r.width_cm(name) for name in self._layers}
        self._spacing = {name: r.spacing_cm(name) for name in self._layers}
        self._ext = r.gate_extension_cm
        self._cmargin = r.contact_margin_cm
        self._bmargin = r.buried_margin_cm
        self._imargin = r.implant_margin_cm
        #: how far above a birth edge the history must reach.
        self._lookback = max(self._ext, self._imargin)

        self._msg_width = {
            name: (
                f"{name} region narrower than the "
                f"{r.min_width.get(name, 0)} lambda minimum width"
            )
            for name in self._layers
        }
        self._msg_spacing = {
            name: (
                f"{name} regions closer than the "
                f"{r.min_spacing.get(name, 0)} lambda minimum spacing"
            )
            for name in self._layers
        }
        # Rule message text comes from the deck (so each technology
        # words its own diagnostics); deckless technologies get the
        # historical NMOS strings, which the NMOS deck reproduces.
        templates = dict(deck.drc.messages) if deck is not None else {}

        def template(key: str, default: str, n: int) -> str:
            return templates.get(key, default).format(n=n)

        self._msg_gate = template(
            "gate-extension",
            "channel edge lacks the {n} lambda poly or diffusion "
            "extension",
            r.gate_extension,
        )
        self._msg_contact = template(
            "contact-enclosure",
            "contact cut not fully covered by metal",
            r.contact_margin,
        )
        self._msg_buried_cover = template(
            "buried-cover",
            "buried window not fully covered by diffusion",
            r.buried_margin,
        )
        self._msg_buried_poly = template(
            "buried-overlap", "buried window never overlaps poly", 0
        )
        self._msg_implant = template(
            "marker-coverage",
            "depletion channel not covered by implant with a {n} "
            "lambda margin",
            r.implant_margin,
        )

        self._chip_top: "int | None" = None
        self._last_y_lo = 0
        self._prev_channels: list[Span] = []
        self._prev_impl_channels: list[Span] = []
        #: recent strips (y_lo, y_hi, spans), newest last, pruned to the
        #: lookback window; feeds the upward (birth-edge) checks.
        self._history: "deque[tuple[int, int, dict[str, list[Span]]]]" = deque()
        self._pending: list[_Pending] = []
        #: raw flag boxes keyed by (rule, layer, message).
        self._flags: dict[tuple[str, str, str], list[FlagBox]] = {}
        self._finished = False

    # ------------------------------------------------------------------
    # StripConsumer interface
    # ------------------------------------------------------------------

    def observe_strip(
        self,
        y_lo: int,
        y_hi: int,
        spans: dict[str, list[Span]],
        channels: list[tuple[int, int, int]],
    ) -> None:
        if self._chip_top is None:
            self._chip_top = y_hi
        self._last_y_lo = y_lo

        while self._history and self._history[0][0] >= y_hi + self._lookback:
            self._history.popleft()

        chan = [(x1, x2) for x1, x2, _net in channels]
        for name in self._layers:
            self._layer_strip(name, spans.get(name) or [], y_lo, y_hi, spans)
        self._coverage_strip(y_lo, y_hi, spans, chan)
        self._gate_strip(y_lo, y_hi, spans, chan)

        impl_chan = [
            piece
            for piece in chan
            if overlaps_any(spans.get(self._implant) or [], *piece)
        ]
        self._channel_edges(y_lo, y_hi, spans, chan, impl_chan)
        self._advance_pending(y_lo, y_hi, spans)

        self._prev_channels = chan
        self._prev_impl_channels = impl_chan
        self._history.append((y_lo, y_hi, spans))

    def finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        if self._chip_top is None:
            return
        y = self._last_y_lo
        for name in self._layers:
            state = self._state[name]
            w = self._width[name]
            for j, (x1, x2) in enumerate(state.prev):
                if w and state.tops[j] - y < w:
                    self._flag(
                        RULE_WIDTH,
                        name,
                        self._msg_width[name],
                        (x1, y, x2, state.tops[j]),
                    )
                if name == self._buried and not state.live[j]:
                    self._flag(
                        RULE_BURIED_ENCLOSURE,
                        name,
                        self._msg_buried_poly,
                        (x1, y, x2, state.tops[j]),
                    )
        # Channels still alive at the bottom edge die there with no
        # geometry left below to satisfy their extension requirements.
        self._queue_channel_deaths(y, self._prev_channels, self._prev_impl_channels)
        for p in self._pending:
            for x1, x2 in p.base:
                self._flag(
                    p.rule, p.layer, p.message, (x1, p.y_edge - p.total, x2, p.y_edge)
                )
        self._pending = []

    # ------------------------------------------------------------------
    # per-layer width / spacing / run tracking
    # ------------------------------------------------------------------

    def _layer_strip(
        self,
        name: str,
        cur: list[Span],
        y_lo: int,
        y_hi: int,
        spans: dict[str, list[Span]],
    ) -> None:
        state = self._state[name]
        w = self._width[name]
        s = self._spacing[name]

        if w:
            for x1, x2 in cur:
                if x2 - x1 < w:
                    self._flag(
                        RULE_WIDTH, name, self._msg_width[name], (x1, y_lo, x2, y_hi)
                    )
        if s:
            for i in range(1, len(cur)):
                gap = cur[i][0] - cur[i - 1][1]
                if 0 < gap < s:
                    self._flag(
                        RULE_SPACING,
                        name,
                        self._msg_spacing[name],
                        (cur[i - 1][1], y_lo, cur[i][0], y_hi),
                    )

        prev, prev_tops = state.prev, state.tops
        is_buried = name == self._buried
        poly = spans.get(self._poly) or [] if is_buried else []

        # Inherit run tops (and buried poly-overlap flags) from the strip
        # above via positive x-overlap; note which prev spans survive.
        new_tops: list[int] = []
        new_live: list[bool] = []
        survived = [False] * len(prev)
        i = 0
        for x1, x2 in cur:
            top = y_hi
            alive = False
            while i < len(prev) and prev[i][1] <= x1:
                i += 1
            j = i
            while j < len(prev) and prev[j][0] < x2:
                survived[j] = True
                if prev_tops[j] > top:
                    top = prev_tops[j]
                if is_buried and state.live[j]:
                    alive = True
                j += 1
            if is_buried and not alive:
                alive = overlaps_any(poly, x1, x2)
            new_tops.append(top)
            new_live.append(alive)

        # Fully-dead runs: minimum-height check, buried poly liveness.
        for j, hit in enumerate(survived):
            if hit:
                continue
            px1, px2 = prev[j]
            if w and prev_tops[j] - y_hi < w:
                self._flag(
                    RULE_WIDTH,
                    name,
                    self._msg_width[name],
                    (px1, y_hi, px2, prev_tops[j]),
                )
            if is_buried and not state.live[j]:
                self._flag(
                    RULE_BURIED_ENCLOSURE,
                    name,
                    self._msg_buried_poly,
                    (px1, y_hi, px2, prev_tops[j]),
                )

        if s:
            # Newborn pieces against the graveyard of pieces that died
            # strictly above: a vertical gap smaller than the spacing.
            born = subtract_spans(cur, prev)
            if born and state.grave:
                for b1, b2 in born:
                    for g1, g2, yd in state.grave:
                        if yd > y_hi and yd - y_hi < s and g1 < b2 and g2 > b1:
                            self._flag(
                                RULE_SPACING,
                                name,
                                self._msg_spacing[name],
                                (max(b1, g1), y_hi, min(b2, g2), yd),
                            )
            dead = subtract_spans(prev, cur)
            if dead:
                state.grave.extend((d1, d2, y_hi) for d1, d2 in dead)
            if state.grave:
                state.grave = [g for g in state.grave if g[2] - y_lo < s]

        state.prev = cur
        state.tops = new_tops
        state.live = new_live

    # ------------------------------------------------------------------
    # coverage rules
    # ------------------------------------------------------------------

    def _coverage_strip(
        self,
        y_lo: int,
        y_hi: int,
        spans: dict[str, list[Span]],
        chan: list[Span],
    ) -> None:
        cuts = spans.get(self._contact) or []
        if cuts:
            metal = _shrink(spans.get(self._metal) or [], self._cmargin)
            for x1, x2 in subtract_spans(cuts, metal):
                self._flag(
                    RULE_CONTACT_ENCLOSURE,
                    self._contact,
                    self._msg_contact,
                    (x1, y_lo, x2, y_hi),
                )
        buried = spans.get(self._buried) or []
        if buried:
            diff = _shrink(spans.get(self._diff) or [], self._bmargin)
            for x1, x2 in subtract_spans(buried, diff):
                self._flag(
                    RULE_BURIED_ENCLOSURE,
                    self._buried,
                    self._msg_buried_cover,
                    (x1, y_lo, x2, y_hi),
                )
        if chan:
            implant = spans.get(self._implant) or []
            m = self._imargin
            for c1, c2 in chan:
                if not overlaps_any(implant, c1, c2):
                    continue
                for x1, x2 in subtract_spans([(c1 - m, c2 + m)], implant):
                    self._flag(
                        RULE_IMPLANT_COVERAGE,
                        self._implant,
                        self._msg_implant,
                        (x1, y_lo, x2, y_hi),
                    )

    # ------------------------------------------------------------------
    # gate extension
    # ------------------------------------------------------------------

    def _gate_strip(
        self,
        y_lo: int,
        y_hi: int,
        spans: dict[str, list[Span]],
        chan: list[Span],
    ) -> None:
        if not chan:
            return
        ext = self._ext
        poly = spans.get(self._poly) or []
        diff = spans.get(self._diff) or []
        for c1, c2 in chan:
            ok = False
            p = span_containing(poly, c1)
            if p is not None and c1 - p[0] >= ext:
                ok = True
            else:
                d = span_containing(diff, c1)
                ok = d is not None and c1 - d[0] >= ext
            if not ok:
                self._flag(
                    RULE_GATE_EXTENSION,
                    self._poly,
                    self._msg_gate,
                    (c1 - ext, y_lo, c1, y_hi),
                )
            ok = False
            p = span_containing(poly, c2 - 1)
            if p is not None and p[1] - c2 >= ext:
                ok = True
            else:
                d = span_containing(diff, c2 - 1)
                ok = d is not None and d[1] - c2 >= ext
            if not ok:
                self._flag(
                    RULE_GATE_EXTENSION,
                    self._poly,
                    self._msg_gate,
                    (c2, y_lo, c2 + ext, y_hi),
                )

    def _channel_edges(
        self,
        y_lo: int,
        y_hi: int,
        spans: dict[str, list[Span]],
        chan: list[Span],
        impl_chan: list[Span],
    ) -> None:
        """Vertical gate-extension and implant-margin checks.

        Birth edges (channel appears at ``y_hi``) look *up* through the
        strip history; death edges (channel present above, gone here)
        queue a pending requirement that this and following strips
        consume downward.
        """
        ext = self._ext
        born = subtract_spans(chan, self._prev_channels)
        for b1, b2 in born:
            covered = union_spans(
                self._covered_above(self._poly, [(b1, b2)], y_hi, ext),
                self._covered_above(self._diff, [(b1, b2)], y_hi, ext),
            )
            for x1, x2 in subtract_spans([(b1, b2)], covered):
                self._flag(
                    RULE_GATE_EXTENSION,
                    self._poly,
                    self._msg_gate,
                    (x1, y_hi, x2, y_hi + ext),
                )
        m = self._imargin
        born_impl = subtract_spans(impl_chan, self._prev_impl_channels)
        for b1, b2 in born_impl:
            req = (b1 - m, b2 + m)
            covered = self._covered_above(self._implant, [req], y_hi, m)
            for x1, x2 in subtract_spans([req], covered):
                self._flag(
                    RULE_IMPLANT_COVERAGE,
                    self._implant,
                    self._msg_implant,
                    (x1, y_hi, x2, y_hi + m),
                )
        dead = subtract_spans(self._prev_channels, chan)
        dead_impl = subtract_spans(self._prev_impl_channels, impl_chan)
        if dead or dead_impl:
            self._queue_channel_deaths(y_hi, dead, dead_impl)

    def _queue_channel_deaths(
        self, y_edge: int, dead: list[Span], dead_impl: list[Span]
    ) -> None:
        ext = self._ext
        for d1, d2 in dead:
            self._pending.append(
                _Pending(
                    rule=RULE_GATE_EXTENSION,
                    layer=self._poly,
                    message=self._msg_gate,
                    y_edge=y_edge,
                    total=ext,
                    need=ext,
                    ok={self._poly: [(d1, d2)], self._diff: [(d1, d2)]},
                    base=[(d1, d2)],
                )
            )
        m = self._imargin
        for d1, d2 in dead_impl:
            req = [(d1 - m, d2 + m)]
            self._pending.append(
                _Pending(
                    rule=RULE_IMPLANT_COVERAGE,
                    layer=self._implant,
                    message=self._msg_implant,
                    y_edge=y_edge,
                    total=m,
                    need=m,
                    ok={self._implant: list(req)},
                    base=list(req),
                )
            )

    def _covered_above(
        self, layer: str, base: list[Span], y_edge: int, dist: int
    ) -> list[Span]:
        """Portions of ``base`` covered by ``layer`` throughout the
        window ``(y_edge, y_edge + dist)`` above the current strip."""
        top = self._chip_top
        if top is None or y_edge + dist > top:
            return []
        covered = base
        for h_lo, h_hi, h_spans in self._history:
            if h_hi <= y_edge or h_lo >= y_edge + dist:
                continue
            covered = intersect_spans(covered, h_spans.get(layer) or [])
            if not covered:
                break
        return covered

    def _advance_pending(
        self, y_lo: int, y_hi: int, spans: dict[str, list[Span]]
    ) -> None:
        if not self._pending:
            return
        height = y_hi - y_lo
        keep: list[_Pending] = []
        for p in self._pending:
            covered: list[Span] = []
            for lname in p.ok:
                p.ok[lname] = intersect_spans(p.ok[lname], spans.get(lname) or [])
                covered = union_spans(covered, p.ok[lname])
            bad = subtract_spans(p.base, covered)
            for x1, x2 in bad:
                self._flag(
                    p.rule, p.layer, p.message, (x1, p.y_edge - p.total, x2, p.y_edge)
                )
            p.base = intersect_spans(p.base, covered)
            p.need -= height
            if p.base and p.need > 0:
                keep.append(p)
        self._pending = keep

    # ------------------------------------------------------------------
    # flag collection and reporting
    # ------------------------------------------------------------------

    def _flag(self, rule: str, layer: str, message: str, box: FlagBox) -> None:
        if rule not in self._active:
            return
        self._flags.setdefault((rule, layer, message), []).append(box)

    def report(self, artifact: "str | None" = None) -> CheckReport:
        """Merge flag boxes into regions and emit one diagnostic each."""
        self.finish()
        diagnostics: list[Diagnostic] = []
        for (rule, layer, message), boxes in self._flags.items():
            for box in _merge_regions(boxes):
                diagnostics.append(
                    Diagnostic(
                        Severity.ERROR,
                        rule,
                        message,
                        tool="drc",
                        layer=layer,
                        box=box,
                    )
                )
        return CheckReport(diagnostics=diagnostics, artifact=artifact).sorted()


def _shrink(spans: list[Span], margin: int) -> list[Span]:
    if not margin:
        return spans
    return [(x1 + margin, x2 - margin) for x1, x2 in spans if x2 - margin > x1 + margin]


def _touches(a: FlagBox, b: FlagBox) -> bool:
    return a[0] <= b[2] and b[0] <= a[2] and a[1] <= b[3] and b[1] <= a[3]


def _merge_regions(boxes: list[FlagBox]) -> list[FlagBox]:
    """Bounding boxes of the touch-connected components of ``boxes``."""
    if len(boxes) > _MERGE_CAP:
        return [
            (
                min(b[0] for b in boxes),
                min(b[1] for b in boxes),
                max(b[2] for b in boxes),
                max(b[3] for b in boxes),
            )
        ]
    parent = list(range(len(boxes)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(len(boxes)):
        for j in range(i + 1, len(boxes)):
            ri, rj = find(i), find(j)
            if ri != rj and _touches(boxes[i], boxes[j]):
                parent[rj] = ri
    regions: dict[int, FlagBox] = {}
    for i, box in enumerate(boxes):
        root = find(i)
        cur = regions.get(root)
        if cur is None:
            regions[root] = box
        else:
            regions[root] = (
                min(cur[0], box[0]),
                min(cur[1], box[1]),
                max(cur[2], box[2]),
                max(cur[3], box[3]),
            )
    return sorted(regions.values())
