"""Post-extraction analysis: static checks, RC estimation, statistics."""

from .netstats import CircuitStats, LayoutStats, circuit_stats, layout_stats
from .rc import NetRC, ProcessModel, estimate_rc, total_capacitance
from .static_check import (
    MIN_INVERTER_RATIO,
    CheckReport,
    Diagnostic,
    Severity,
    static_check,
)

__all__ = [
    "MIN_INVERTER_RATIO",
    "CheckReport",
    "CircuitStats",
    "Diagnostic",
    "LayoutStats",
    "NetRC",
    "ProcessModel",
    "Severity",
    "circuit_stats",
    "estimate_rc",
    "layout_stats",
    "static_check",
    "total_capacitance",
]
