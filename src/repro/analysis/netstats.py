"""Circuit summary statistics.

The kind of numbers Table 5-1 reports per chip (device counts, boxes),
plus distributional summaries useful when validating that a synthetic
workload matches the character of the paper's chips.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..cif import Layout
from ..core.netlist import Circuit
from ..frontend import instantiate


@dataclass(frozen=True)
class CircuitStats:
    """Headline numbers for one extracted circuit."""

    devices: int
    enhancement: int
    depletion: int
    nets: int
    named_nets: int
    terminals_per_net_mean: float
    malformed: int

    def as_row(self) -> dict:
        return {
            "devices": self.devices,
            "enhancement": self.enhancement,
            "depletion": self.depletion,
            "nets": self.nets,
            "named_nets": self.named_nets,
            "malformed": self.malformed,
        }


def circuit_stats(circuit: Circuit) -> CircuitStats:
    kinds = Counter(d.kind for d in circuit.devices)
    fanin: Counter = Counter()
    for device in circuit.devices:
        for net in (device.gate, device.source, device.drain):
            if net is not None:
                fanin[net] += 1
    used = len(fanin)
    return CircuitStats(
        devices=len(circuit.devices),
        enhancement=kinds.get("nEnh", 0),
        depletion=kinds.get("nDep", 0),
        nets=len(circuit.nets),
        named_nets=sum(1 for n in circuit.nets if n.names),
        terminals_per_net_mean=(
            sum(fanin.values()) / used if used else 0.0
        ),
        malformed=sum(1 for d in circuit.devices if d.is_malformed),
    )


@dataclass(frozen=True)
class LayoutStats:
    """Artwork-side numbers: the paper's '# of Boxes' column."""

    boxes: int
    boxes_by_layer: dict
    width: int
    height: int

    @property
    def boxes_thousands(self) -> float:
        return self.boxes / 1000.0


def layout_stats(layout: Layout) -> LayoutStats:
    boxes, _ = instantiate(layout)
    by_layer: Counter = Counter(layer for layer, _ in boxes)
    if boxes:
        xmin = min(b.xmin for _, b in boxes)
        ymin = min(b.ymin for _, b in boxes)
        xmax = max(b.xmax for _, b in boxes)
        ymax = max(b.ymax for _, b in boxes)
    else:
        xmin = ymin = xmax = ymax = 0
    return LayoutStats(
        boxes=len(boxes),
        boxes_by_layer=dict(by_layer),
        width=xmax - xmin,
        height=ymax - ymin,
    )
