"""Static checking of extracted circuits.

Section 1 of the paper lists the downstream tools a wirelist feeds; the
static checker "performs ratio checks, detects malformed transistors, and
checks for signals that are stuck at logical 0 or 1".  This module is
that checker, operating directly on the extractor's Circuit model.

NMOS ratio rule: for a ratioed inverter driven by a full level, the
pullup length/width ratio divided by the pulldown's must be at least 4
(Mead & Conway's k >= 4 for restoring logic).
"""

from __future__ import annotations

from ..core.netlist import Circuit, Device
from ..diagnostics import CheckReport, Diagnostic, Severity

__all__ = [
    "CheckReport",
    "Diagnostic",
    "Severity",
    "DEFAULT_VDD_NAMES",
    "DEFAULT_GND_NAMES",
    "MIN_INVERTER_RATIO",
    "static_check",
]

#: Minimum pullup-to-pulldown impedance ratio for restoring NMOS logic.
MIN_INVERTER_RATIO = 4.0

#: Default rail spellings; matching is case-insensitive, so these cover
#: VDD/Vdd/vdd! etc. without enumerating every capitalization.
DEFAULT_VDD_NAMES: tuple[str, ...] = ("VDD", "VDD!")
DEFAULT_GND_NAMES: tuple[str, ...] = ("GND", "GND!", "VSS", "GROUND")


def static_check(
    circuit: Circuit,
    *,
    vdd_names: tuple[str, ...] = DEFAULT_VDD_NAMES,
    gnd_names: tuple[str, ...] = DEFAULT_GND_NAMES,
    min_ratio: float = MIN_INVERTER_RATIO,
) -> CheckReport:
    """Run every check over ``circuit``.

    Rail-name matching is case-insensitive; ``vdd_names`` / ``gnd_names``
    add alternate rail spellings (the CLI exposes them as ``--vdd`` /
    ``--gnd``).
    """
    report = CheckReport()
    vdd, gnd = _find_rails(circuit, vdd_names, gnd_names)
    _check_malformed(circuit, report)
    _check_rails(circuit, report, vdd, gnd)
    _check_ratios(circuit, report, vdd, gnd, min_ratio)
    _check_floating(circuit, report, vdd, gnd)
    return report


def _find_rails(
    circuit: Circuit,
    vdd_names: tuple[str, ...],
    gnd_names: tuple[str, ...],
) -> tuple[set[int], set[int]]:
    vdd_set = {name.casefold() for name in vdd_names}
    gnd_set = {name.casefold() for name in gnd_names}
    vdd: set[int] = set()
    gnd: set[int] = set()
    for net in circuit.nets:
        folded = {name.casefold() for name in net.names}
        if folded & vdd_set:
            vdd.add(net.index)
        if folded & gnd_set:
            gnd.add(net.index)
    return vdd, gnd


def _check_malformed(circuit: Circuit, report: CheckReport) -> None:
    for device in circuit.devices:
        if device.gate is None:
            report.diagnostics.append(
                Diagnostic(
                    Severity.ERROR,
                    "malformed-no-gate",
                    f"device D{device.index} has a channel but no gate net",
                    device=device.index,
                )
            )
        if device.source is None or device.drain is None:
            report.diagnostics.append(
                Diagnostic(
                    Severity.ERROR,
                    "malformed-terminals",
                    f"device D{device.index} has "
                    f"{len(device.terminals)} diffusion terminal(s); "
                    f"a transistor needs two",
                    device=device.index,
                )
            )
        elif len(device.terminals) > 2:
            report.diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "extra-terminals",
                    f"device D{device.index} touches "
                    f"{len(device.terminals)} diffusion nets",
                    device=device.index,
                )
            )
        if len(device.gates) > 1:
            report.diagnostics.append(
                Diagnostic(
                    Severity.ERROR,
                    "multi-gate",
                    f"device D{device.index} channel is crossed by "
                    f"{len(device.gates)} distinct poly nets",
                    device=device.index,
                )
            )


def _check_rails(
    circuit: Circuit, report: CheckReport, vdd: set[int], gnd: set[int]
) -> None:
    if vdd & gnd:
        report.diagnostics.append(
            Diagnostic(
                Severity.ERROR,
                "rail-short",
                "a net carries both VDD and GND names: power short",
                net=next(iter(vdd & gnd)),
            )
        )
    if not vdd:
        report.diagnostics.append(
            Diagnostic(
                Severity.WARNING, "no-vdd", "no net is named VDD"
            )
        )
    if not gnd:
        report.diagnostics.append(
            Diagnostic(
                Severity.WARNING, "no-gnd", "no net is named GND"
            )
        )
    for device in circuit.devices:
        sd = {device.source, device.drain}
        if device.source is not None and device.source == device.drain:
            continue  # gate-tied loads legitimately repeat a net
        if sd <= vdd or sd <= gnd:
            report.diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "shorted-device",
                    f"device D{device.index} has both terminals on the "
                    f"same rail",
                    device=device.index,
                )
            )


def _pullups_and_pulldowns(
    circuit: Circuit, vdd: set[int], gnd: set[int]
) -> tuple[dict[int, Device], dict[int, list[Device]]]:
    """Depletion loads by output net; enhancement pulldowns by output."""
    pullups: dict[int, Device] = {}
    pulldowns: dict[int, list[Device]] = {}
    for device in circuit.devices:
        if device.source is None or device.drain is None:
            continue
        terminals = {device.source, device.drain}
        if device.depletion and terminals & vdd:
            output = next(iter(terminals - vdd), None)
            if output is not None:
                pullups[output] = device
        elif not device.depletion and terminals & gnd:
            output = next(iter(terminals - gnd), None)
            if output is not None:
                pulldowns.setdefault(output, []).append(device)
    return pullups, pulldowns


def _check_ratios(
    circuit: Circuit,
    report: CheckReport,
    vdd: set[int],
    gnd: set[int],
    min_ratio: float,
) -> None:
    if not vdd or not gnd:
        return
    pullups, pulldowns = _pullups_and_pulldowns(circuit, vdd, gnd)
    for output, load in pullups.items():
        drivers = pulldowns.get(output)
        if not drivers or not load.width or not load.length:
            continue
        z_up = load.length / load.width
        # Series pulldown chains are not traced; the direct driver set
        # approximates the worst single path.
        for driver in drivers:
            if not driver.width or not driver.length:
                continue
            z_down = driver.length / driver.width
            ratio = z_up / z_down if z_down else float("inf")
            if ratio < min_ratio:
                report.diagnostics.append(
                    Diagnostic(
                        Severity.WARNING,
                        "ratio",
                        f"net N{output}: pullup/pulldown impedance ratio "
                        f"{ratio:.2f} below {min_ratio:g} "
                        f"(D{load.index} over D{driver.index})",
                        device=driver.index,
                        net=output,
                    )
                )


def _check_floating(
    circuit: Circuit, report: CheckReport, vdd: set[int], gnd: set[int]
) -> None:
    """Gates driven by nets no transistor can ever drive are stuck."""
    drivable: set[int] = set(vdd) | set(gnd)
    for device in circuit.devices:
        for terminal in (device.source, device.drain):
            if terminal is not None:
                drivable.add(terminal)
    for device in circuit.devices:
        if device.gate is not None and device.gate not in drivable:
            report.diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "floating-gate",
                    f"device D{device.index} gate net N{device.gate} is "
                    f"not driven by any source/drain or rail (stuck or "
                    f"chip input)",
                    device=device.index,
                    net=device.gate,
                )
            )
