"""Static checking of extracted circuits.

Section 1 of the paper lists the downstream tools a wirelist feeds; the
static checker "performs ratio checks, detects malformed transistors, and
checks for signals that are stuck at logical 0 or 1".  This module is
that checker, operating directly on the extractor's Circuit model.

The checker is device-type-table driven: the technology deck declares
each device type's polarity and depletion flag, and its ERC policy
selects the logic style --

``ratio``
    NMOS depletion loads; for a ratioed inverter driven by a full
    level, the pullup impedance over the *series pulldown path's* must
    be at least ``min_ratio`` (Mead & Conway's k >= 4 for restoring
    logic).  Series chains between an output and GND are traced and
    their z summed, not approximated by the direct driver set.

``complementary``
    CMOS; there are no loads to ratio-check.  Instead every node driven
    by both p and n devices must have a full p path to VDD and a full
    n path to GND (``complementary-pair``), and always-on ratioed
    structures -- a p gate tied to GND or an n gate tied to VDD -- are
    flagged as ``pseudo-nmos``.

Diagnostics carry the owning device's layout location as a degenerate
box, so SARIF consumers can navigate ERC findings like DRC ones, and
``floating-gate`` downgrades to INFO when the undriven net carries a
user-defined CIF name (chip inputs look identical to stuck nodes from
inside the layout).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.netlist import Circuit, Device, Net
from ..diagnostics import CheckReport, Diagnostic, Severity

__all__ = [
    "CheckReport",
    "Diagnostic",
    "Severity",
    "DEFAULT_VDD_NAMES",
    "DEFAULT_GND_NAMES",
    "ERC_RULE_HELP",
    "MIN_INVERTER_RATIO",
    "static_check",
]

#: Minimum pullup-to-pulldown impedance ratio for restoring NMOS logic.
MIN_INVERTER_RATIO = 4.0

#: Default rail spellings; matching is case-insensitive, so these cover
#: VDD/Vdd/vdd! etc. without enumerating every capitalization.
DEFAULT_VDD_NAMES: tuple[str, ...] = ("VDD", "VDD!")
DEFAULT_GND_NAMES: tuple[str, ...] = ("GND", "GND!", "VSS", "GROUND")

#: One-line help per ERC rule id, merged into ``--list-rules`` and the
#: SARIF rule metadata alongside the DRC catalog.
ERC_RULE_HELP: dict[str, str] = {
    "malformed-no-gate": "device has a channel but no gate net",
    "malformed-terminals": "device does not have two diffusion terminals",
    "extra-terminals": "device touches more than two diffusion nets",
    "multi-gate": "device channel crossed by several distinct gate nets",
    "rail-short": "one net carries both VDD and GND names",
    "no-vdd": "no net is named VDD",
    "no-gnd": "no net is named GND",
    "shorted-device": "both device terminals sit on the same rail",
    "ratio": "pullup/pulldown impedance ratio below the minimum",
    "floating-gate": (
        "gate net not driven by any source/drain or rail "
        "(stuck or chip input)"
    ),
    "pseudo-nmos": (
        "always-on device: gate tied to the opposing rail in a "
        "complementary technology"
    ),
    "complementary-pair": (
        "node driven by p and n devices lacks a full pull-up or "
        "pull-down path"
    ),
}

#: Longest series chain the ratio tracer follows, in devices.
_MAX_CHAIN = 6
#: Most distinct pulldown paths examined per output net.
_MAX_PATHS = 32


@dataclass(frozen=True)
class _DeviceType:
    """Electrical view of one device kind (from the deck's type table)."""

    polarity: str
    depletion: bool


def _device_types(tech: object) -> "dict[str, _DeviceType]":
    deck = getattr(tech, "deck", None)
    if deck is None:
        return {
            "nEnh": _DeviceType("n", False),
            "nDep": _DeviceType("n", True),
        }
    return {
        rule.name: _DeviceType(rule.polarity, rule.depletion)
        for rule in deck.device_types
    }


def _type_of(
    types: "dict[str, _DeviceType]", device: Device
) -> _DeviceType:
    known = types.get(device.kind)
    if known is not None:
        return known
    # Unknown kind (hand-built circuits): trust the device's own flag.
    return _DeviceType("n", device.depletion)


def _device_box(device: Device) -> "tuple[int, int, int, int] | None":
    """The device's location as a degenerate box, for SARIF navigation."""
    if device.location is None:
        return None
    x, y = device.location
    return (x, y, x, y)


def static_check(
    circuit: Circuit,
    *,
    tech: object = None,
    vdd_names: "tuple[str, ...] | None" = None,
    gnd_names: "tuple[str, ...] | None" = None,
    min_ratio: "float | None" = None,
) -> CheckReport:
    """Run every check over ``circuit``.

    ``tech`` supplies the deck whose ERC policy (style, rail spellings,
    minimum ratio) and device-type table drive the checks; explicit
    ``vdd_names`` / ``gnd_names`` / ``min_ratio`` override the policy
    (the CLI exposes them as ``--vdd`` / ``--gnd``).  With no deck the
    historical NMOS ratio policy applies.  Rail-name matching is
    case-insensitive.
    """
    deck = getattr(tech, "deck", None)
    erc = deck.erc if deck is not None else None
    style = erc.style if erc is not None else "ratio"
    if vdd_names is None:
        vdd_names = tuple(erc.vdd_names) if erc else DEFAULT_VDD_NAMES
    if gnd_names is None:
        gnd_names = tuple(erc.gnd_names) if erc else DEFAULT_GND_NAMES
    if min_ratio is None:
        min_ratio = erc.min_ratio if erc else MIN_INVERTER_RATIO
    types = _device_types(tech)

    report = CheckReport()
    vdd, gnd = _find_rails(circuit, vdd_names, gnd_names)
    _check_malformed(circuit, report)
    _check_rails(circuit, report, vdd, gnd)
    if style == "complementary":
        _check_complementary(circuit, report, types, vdd, gnd)
    else:
        _check_ratios(circuit, report, types, vdd, gnd, min_ratio)
    _check_floating(circuit, report, vdd, gnd)
    return report


def _find_rails(
    circuit: Circuit,
    vdd_names: "tuple[str, ...]",
    gnd_names: "tuple[str, ...]",
) -> "tuple[set[int], set[int]]":
    vdd_set = {name.casefold() for name in vdd_names}
    gnd_set = {name.casefold() for name in gnd_names}
    vdd: set[int] = set()
    gnd: set[int] = set()
    for net in circuit.nets:
        folded = {name.casefold() for name in net.names}
        if folded & vdd_set:
            vdd.add(net.index)
        if folded & gnd_set:
            gnd.add(net.index)
    return vdd, gnd


def _check_malformed(circuit: Circuit, report: CheckReport) -> None:
    for device in circuit.devices:
        box = _device_box(device)
        if device.gate is None:
            report.diagnostics.append(
                Diagnostic(
                    Severity.ERROR,
                    "malformed-no-gate",
                    f"device D{device.index} has a channel but no gate net",
                    device=device.index,
                    box=box,
                )
            )
        if device.source is None or device.drain is None:
            report.diagnostics.append(
                Diagnostic(
                    Severity.ERROR,
                    "malformed-terminals",
                    f"device D{device.index} has "
                    f"{len(device.terminals)} diffusion terminal(s); "
                    f"a transistor needs two",
                    device=device.index,
                    box=box,
                )
            )
        elif len(device.terminals) > 2:
            report.diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "extra-terminals",
                    f"device D{device.index} touches "
                    f"{len(device.terminals)} diffusion nets",
                    device=device.index,
                    box=box,
                )
            )
        if len(device.gates) > 1:
            report.diagnostics.append(
                Diagnostic(
                    Severity.ERROR,
                    "multi-gate",
                    f"device D{device.index} channel is crossed by "
                    f"{len(device.gates)} distinct poly nets",
                    device=device.index,
                    box=box,
                )
            )


def _check_rails(
    circuit: Circuit, report: CheckReport, vdd: "set[int]", gnd: "set[int]"
) -> None:
    if vdd & gnd:
        report.diagnostics.append(
            Diagnostic(
                Severity.ERROR,
                "rail-short",
                "a net carries both VDD and GND names: power short",
                net=next(iter(vdd & gnd)),
            )
        )
    if not vdd:
        report.diagnostics.append(
            Diagnostic(
                Severity.WARNING, "no-vdd", "no net is named VDD"
            )
        )
    if not gnd:
        report.diagnostics.append(
            Diagnostic(
                Severity.WARNING, "no-gnd", "no net is named GND"
            )
        )
    for device in circuit.devices:
        sd = {device.source, device.drain}
        if device.source is not None and device.source == device.drain:
            continue  # gate-tied loads legitimately repeat a net
        if sd <= vdd or sd <= gnd:
            report.diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "shorted-device",
                    f"device D{device.index} has both terminals on the "
                    f"same rail",
                    device=device.index,
                    box=_device_box(device),
                )
            )


# ----------------------------------------------------------------------
# ratio style (NMOS)
# ----------------------------------------------------------------------


def _pullups(
    circuit: Circuit,
    types: "dict[str, _DeviceType]",
    vdd: "set[int]",
) -> "dict[int, Device]":
    """Depletion loads by the output net they pull up."""
    pullups: dict[int, Device] = {}
    for device in circuit.devices:
        if device.source is None or device.drain is None:
            continue
        terminals = {device.source, device.drain}
        if _type_of(types, device).depletion and terminals & vdd:
            output = next(iter(terminals - vdd), None)
            if output is not None:
                pullups[output] = device
    return pullups


def _pulldown_paths(
    circuit: Circuit,
    types: "dict[str, _DeviceType]",
    output: int,
    vdd: "set[int]",
    gnd: "set[int]",
) -> "list[list[Device]]":
    """Series chains of enhancement devices from ``output`` to GND.

    Depth-first over the diffusion graph, devices tried in index order
    so single-device paths keep the historical report order; bounded by
    :data:`_MAX_CHAIN` devices per path and :data:`_MAX_PATHS` paths.
    """
    by_net: dict[int, list[Device]] = {}
    for device in circuit.devices:
        if device.source is None or device.drain is None:
            continue
        if device.source == device.drain:
            continue
        if _type_of(types, device).depletion:
            continue
        by_net.setdefault(device.source, []).append(device)
        by_net.setdefault(device.drain, []).append(device)

    paths: list[list[Device]] = []

    def walk(net: int, chain: "list[Device]", seen: "set[int]") -> None:
        if len(paths) >= _MAX_PATHS or len(chain) >= _MAX_CHAIN:
            return
        for device in by_net.get(net, ()):
            if device.index in seen:
                continue
            far = device.drain if device.source == net else device.source
            if far is None or far in vdd:
                continue
            next_chain = chain + [device]
            if far in gnd:
                paths.append(next_chain)
                if len(paths) >= _MAX_PATHS:
                    return
                continue
            if far == output:
                continue
            walk(far, next_chain, seen | {device.index})

    walk(output, [], set())
    return paths


def _chain_label(chain: "list[Device]") -> str:
    return "+".join(f"D{device.index}" for device in chain)


def _check_ratios(
    circuit: Circuit,
    report: CheckReport,
    types: "dict[str, _DeviceType]",
    vdd: "set[int]",
    gnd: "set[int]",
    min_ratio: float,
) -> None:
    if not vdd or not gnd:
        return
    pullups = _pullups(circuit, types, vdd)
    for output, load in pullups.items():
        if output in gnd or not load.width or not load.length:
            continue
        z_up = load.length / load.width
        for chain in _pulldown_paths(circuit, types, output, vdd, gnd):
            if any(not d.width or not d.length for d in chain):
                continue
            z_down = sum(d.length / d.width for d in chain)
            ratio = z_up / z_down if z_down else float("inf")
            if ratio < min_ratio:
                report.diagnostics.append(
                    Diagnostic(
                        Severity.WARNING,
                        "ratio",
                        f"net N{output}: pullup/pulldown impedance ratio "
                        f"{ratio:.2f} below {min_ratio:g} "
                        f"(D{load.index} over {_chain_label(chain)})",
                        device=chain[0].index,
                        net=output,
                        box=_device_box(chain[0]),
                    )
                )


# ----------------------------------------------------------------------
# complementary style (CMOS)
# ----------------------------------------------------------------------


def _reaches_rail(
    start: int,
    rail: "set[int]",
    by_net: "dict[int, list[Device]]",
) -> bool:
    """Whether ``start`` reaches a rail net through the given network."""
    seen = {start}
    stack = [start]
    while stack:
        net = stack.pop()
        for device in by_net.get(net, ()):
            far = device.drain if device.source == net else device.source
            if far is None or far in seen:
                continue
            if far in rail:
                return True
            seen.add(far)
            stack.append(far)
    return False


def _check_complementary(
    circuit: Circuit,
    report: CheckReport,
    types: "dict[str, _DeviceType]",
    vdd: "set[int]",
    gnd: "set[int]",
) -> None:
    if not vdd or not gnd:
        return
    p_by_net: dict[int, list[Device]] = {}
    n_by_net: dict[int, list[Device]] = {}
    for device in circuit.devices:
        if device.source is None or device.drain is None:
            continue
        polarity = _type_of(types, device).polarity
        table = p_by_net if polarity == "p" else n_by_net
        if device.source != device.drain:
            table.setdefault(device.source, []).append(device)
            table.setdefault(device.drain, []).append(device)

        # Always-on ratioed structures: a p gate on GND (or an n gate
        # on VDD) never turns off -- the pseudo-NMOS idiom this deck's
        # style forbids.
        gate = device.gate
        if gate is None:
            continue
        if (polarity == "p" and gate in gnd) or (
            polarity == "n" and gate in vdd
        ):
            rail = "GND" if gate in gnd else "VDD"
            report.diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "pseudo-nmos",
                    f"device D{device.index} ({device.kind}) gate is "
                    f"tied to {rail}: always-on ratioed load in a "
                    f"complementary technology",
                    device=device.index,
                    net=gate,
                    box=_device_box(device),
                )
            )

    rails = vdd | gnd
    for net in circuit.nets:
        index = net.index
        if index in rails:
            continue
        if index not in p_by_net or index not in n_by_net:
            continue
        missing: list[str] = []
        if not _reaches_rail(index, vdd, p_by_net):
            missing.append("p pull-up path to VDD")
        if not _reaches_rail(index, gnd, n_by_net):
            missing.append("n pull-down path to GND")
        if missing:
            report.diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "complementary-pair",
                    f"net N{index} is driven by p and n devices but "
                    f"has no {' or '.join(missing)}",
                    net=index,
                    box=(
                        (*net.location, *net.location)
                        if net.location is not None
                        else None
                    ),
                )
            )


# ----------------------------------------------------------------------
# floating gates
# ----------------------------------------------------------------------


def _check_floating(
    circuit: Circuit, report: CheckReport, vdd: "set[int]", gnd: "set[int]"
) -> None:
    """Gates driven by nets no transistor can ever drive are stuck.

    A net carrying a user-defined CIF name is presumed to be chip I/O
    (the name is how the designer exports it), so the finding drops to
    INFO; anonymous undriven gates stay warnings.
    """
    drivable: set[int] = set(vdd) | set(gnd)
    for device in circuit.devices:
        for terminal in (device.source, device.drain):
            if terminal is not None:
                drivable.add(terminal)
    named: dict[int, Net] = {net.index: net for net in circuit.nets}
    for device in circuit.devices:
        if device.gate is not None and device.gate not in drivable:
            net = named.get(device.gate)
            is_named = bool(net is not None and net.names)
            report.diagnostics.append(
                Diagnostic(
                    Severity.INFO if is_named else Severity.WARNING,
                    "floating-gate",
                    f"device D{device.index} gate net N{device.gate} is "
                    f"not driven by any source/drain or rail (stuck or "
                    f"chip input)",
                    device=device.index,
                    net=device.gate,
                    box=_device_box(device),
                )
            )
