"""RC post-processing from net geometry.

ACE "does not directly compute the capacitance and resistance for nets
and devices, as it was undesirable to embed any fixed notion of a circuit
model into the extractor code.  It is possible, however, to obtain a list
of geometry that constitutes each net and device.  This information is
enough for a post-processing program to compute capacitances and
resistances."  (Section 2.)

This module is that post-processing program: given a circuit extracted
with ``keep_geometry=True`` and a :class:`ProcessModel` of per-layer unit
values, it reports per-net capacitance and resistance estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.netlist import Circuit, Net
from ..geometry import Box, normalize_region, union_area


@dataclass(frozen=True)
class ProcessModel:
    """Per-layer electrical constants.

    Units are deliberately simple: capacitance in fF per square micron,
    sheet resistance in ohms per square.  Defaults approximate a 2.5um
    NMOS process (Mead & Conway chapter 1 magnitudes).
    """

    #: fF per um^2 of area to substrate.
    area_cap: dict = field(
        default_factory=lambda: {"NM": 0.03, "NP": 0.05, "ND": 0.10}
    )
    #: ohms per square.
    sheet_res: dict = field(
        default_factory=lambda: {"NM": 0.05, "NP": 50.0, "ND": 30.0}
    )
    #: centimicrons per micron (CIF unit conversion).
    units_per_micron: int = 100


@dataclass(frozen=True, slots=True)
class NetRC:
    """Estimated parasitics for one net."""

    net: int
    capacitance_ff: float
    resistance_ohm: float
    area_by_layer: dict


def estimate_rc(
    circuit: Circuit, model: ProcessModel | None = None
) -> dict[int, NetRC]:
    """Per-net capacitance and resistance estimates.

    Capacitance is summed per-layer area times unit capacitance.
    Resistance is a lumped estimate per layer: sheet resistance times the
    net's bounding-path squares (length/width of the layer region treated
    as one wire), summed over layers -- crude, but exactly the kind of
    model a 1983 post-processor applied, and monotone in wire length,
    which is what the examples demonstrate.

    Requires a circuit extracted with ``keep_geometry=True``.
    """
    model = model or ProcessModel()
    results: dict[int, NetRC] = {}
    for net in circuit.nets:
        if not net.geometry:
            continue
        results[net.index] = _net_rc(net, model)
    return results


def _net_rc(net: Net, model: ProcessModel) -> NetRC:
    by_layer: dict[str, list[Box]] = {}
    for layer, box in net.geometry:
        by_layer.setdefault(layer, []).append(box)

    scale = model.units_per_micron
    cap = 0.0
    res = 0.0
    areas: dict[str, float] = {}
    for layer, boxes in by_layer.items():
        area_um2 = union_area(boxes) / (scale * scale)
        areas[layer] = area_um2
        cap += area_um2 * model.area_cap.get(layer, 0.0)
        rho = model.sheet_res.get(layer)
        if rho is not None and area_um2 > 0:
            squares = _path_squares(boxes)
            res += rho * squares
    return NetRC(
        net=net.index,
        capacitance_ff=cap,
        resistance_ohm=res,
        area_by_layer=areas,
    )


def _path_squares(boxes: list[Box]) -> float:
    """Approximate wire squares: dominant extent over mean width.

    The region's longer bounding-box side is taken as the electrical
    path; area / length gives the mean width, and length / width the
    squares.  Exact for straight wires, reasonable for L and T shapes.
    """
    region = normalize_region(boxes)
    if not region:
        return 0.0
    xmin = min(b.xmin for b in region)
    ymin = min(b.ymin for b in region)
    xmax = max(b.xmax for b in region)
    ymax = max(b.ymax for b in region)
    length = max(xmax - xmin, ymax - ymin)
    area = sum(b.area for b in region)
    if area == 0 or length == 0:
        return 0.0
    width = area / length
    return length / width


def total_capacitance(rc: "dict[int, NetRC]") -> float:
    return sum(entry.capacitance_ff for entry in rc.values())
