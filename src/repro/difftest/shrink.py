"""Greedy failure shrinking: smallest layout that still disagrees.

A fuzz failure on a 40-primitive hierarchical layout is a chore to debug;
the same failure on four boxes is a unit test.  The shrinker reduces a
failing layout while a caller-supplied predicate ("the oracles still
disagree") keeps holding:

1. **flatten** -- replace the whole hierarchy with its instantiated,
   fractured artwork.  One probe, and it removes calls, transforms,
   polygons, and wires from the search space in a single step;
2. **delete** -- ddmin-style chunked deletion over every primitive list
   (boxes, polygons, wires, calls, labels) of every reachable symbol:
   try dropping halves, then quarters, down to single primitives, and
   keep any deletion that preserves the disagreement;
3. repeat until a whole pass makes no progress (or the probe budget is
   spent -- shrinking is best-effort by design).

The predicate sees a fully validated :class:`Layout`; probes are bounded
by ``max_probes`` so a pathological case cannot stall a fuzzing run.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable

from ..cif import Label, Layout
from ..cif.layout import TOP_SYMBOL
from ..frontend import instantiate

Predicate = Callable[[Layout], bool]


@dataclass
class ShrinkResult:
    """The minimized layout plus how the shrink went."""

    layout: Layout
    before: int
    after: int
    probes: int
    flattened: bool


def primitive_count(layout: Layout) -> int:
    """Geometry primitives + labels + calls over reachable symbols."""
    total = 0
    for number in _reachable(layout):
        symbol = layout.symbol(number)
        total += symbol.shape_count() + len(symbol.labels) + len(symbol.calls)
    return total


def shrink(
    layout: Layout, still_fails: Predicate, *, max_probes: int = 400
) -> ShrinkResult:
    """Greedily minimize ``layout`` while ``still_fails`` holds."""
    before = primitive_count(layout)
    probes = 0
    flattened = False

    def probe(candidate: Layout) -> bool:
        nonlocal probes
        probes += 1
        try:
            candidate.validate()
            return still_fails(candidate)
        except Exception:
            # A reduction that crashes an oracle still reproduces a bug,
            # but only the predicate may decide that; a candidate that
            # cannot even validate is simply rejected.
            return False

    flat = _flatten(layout)
    if probes < max_probes and probe(flat):
        layout = flat
        flattened = True

    progress = True
    while progress and probes < max_probes:
        progress = False
        for number in list(_reachable(layout)):
            for attr in ("calls", "boxes", "polygons", "wires", "labels"):
                reduced, used = _ddmin_list(
                    layout, number, attr, probe, max_probes - probes
                )
                if reduced is not None:
                    layout = reduced
                    progress = True
                if used and probes >= max_probes:
                    break
        layout = _prune_unreachable(layout)
    return ShrinkResult(
        layout=_prune_unreachable(layout),
        before=before,
        after=primitive_count(layout),
        probes=probes,
        flattened=flattened,
    )


def _ddmin_list(
    layout: Layout,
    number: int,
    attr: str,
    probe: Predicate,
    budget: int,
) -> "tuple[Layout | None, bool]":
    """Chunk-delete entries of one primitive list; returns the smaller
    layout (or None if nothing could be removed) and whether any probe
    ran."""
    items = getattr(layout.symbol(number), attr)
    if not items:
        return None, False
    best: Layout | None = None
    used = False
    chunk = max(1, len(items) // 2)
    while budget > 0:
        items = getattr((best or layout).symbol(number), attr)
        if not items:
            break
        removed_any = False
        start = 0
        while start < len(items) and budget > 0:
            candidate = _clone(best or layout)
            del getattr(candidate.symbol(number), attr)[
                start : start + chunk
            ]
            used = True
            budget -= 1
            if probe(candidate):
                best = candidate
                items = getattr(candidate.symbol(number), attr)
                removed_any = True
                # keep ``start`` -- the next chunk slid into this slot
            else:
                start += chunk
        if not removed_any:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return best, used


def _flatten(layout: Layout) -> Layout:
    """The same artwork with no hierarchy (and no polygons or wires)."""
    boxes, labels = instantiate(layout)
    flat = Layout()
    for layer, box in boxes:
        flat.top.add_box(layer, box)
    for label in labels:
        flat.top.add_label(Label(label.name, label.x, label.y, label.layer))
    return flat


def _reachable(layout: Layout) -> list[int]:
    """Symbol numbers reachable from the top, top first."""
    seen: list[int] = []
    stack = [TOP_SYMBOL]
    while stack:
        number = stack.pop()
        if number in seen:
            continue
        seen.append(number)
        for call in layout.symbol(number).calls:
            stack.append(call.symbol)
    return seen


def _prune_unreachable(layout: Layout) -> Layout:
    reachable = set(_reachable(layout))
    for number in list(layout.symbols):
        if number not in reachable:
            del layout.symbols[number]
    return layout


def _clone(layout: Layout) -> Layout:
    return copy.deepcopy(layout)
