"""DRC fault planting: the checker testing itself.

The fuzzing harness proves the *extractor* catches armed scanline bugs
(:mod:`repro.difftest.faults`); this module gives the design-rule
checker the same treatment.  Each violation snippet from
:mod:`repro.workloads.violations` is dropped just outside the bounding
box of a known-clean host cell; the self-test demands that

1. the host alone lints clean (no false positives),
2. the planted layout reports the snippet's rule id, and
3. the shrinker can minimize the planted layout while the rule keeps
   firing -- so a reported violation always comes with a small repro.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..cif import Layout
from ..drc import run_drc
from ..frontend import instantiate
from ..geometry import Box
from ..tech import NMOS, Technology
from ..workloads import (
    cmos_inverter,
    cmos_nand2,
    inverter,
    nand2,
    single_transistor,
)
from ..workloads.violations import VIOLATION_SNIPPETS, violation_snippets_for
from .shrink import ShrinkResult, shrink

#: Clear distance (lambda) between a host's artwork and the planted
#: snippet -- beyond every spacing rule, so host and snippet never
#: interact.
PLANT_CLEARANCE = 8

#: name -> known-clean host layout factory.
DEFAULT_HOSTS: dict[str, Callable[[int], Layout]] = {
    "inverter": inverter,
    "nand2": nand2,
    "single_transistor": single_transistor,
}

#: deck name -> known-clean hosts drawn in that deck's layers.
DECK_HOSTS: dict[str, dict[str, Callable[[int], Layout]]] = {
    "nmos": DEFAULT_HOSTS,
    "cmos": {
        "cmos_inverter": cmos_inverter,
        "cmos_nand2": cmos_nand2,
    },
}


def hosts_for(tech: Technology) -> "dict[str, Callable[[int], Layout]]":
    """The known-clean host cells drawn in ``tech``'s deck layers."""
    deck = getattr(tech, "deck", None)
    name = deck.name if deck is not None else "nmos"
    return DECK_HOSTS.get(name, DEFAULT_HOSTS)


@dataclass
class PlantResult:
    """Outcome of planting one rule's snippet into one host."""

    rule: str
    host: str
    caught: bool
    shrunk: "ShrinkResult | None" = None
    shrunk_still_fails: bool = False

    @property
    def ok(self) -> bool:
        if not self.caught:
            return False
        return self.shrunk is None or self.shrunk_still_fails


@dataclass
class SelfTestResult:
    clean_hosts: list[str]
    dirty_hosts: list[str]
    plants: list[PlantResult]

    @property
    def ok(self) -> bool:
        return not self.dirty_hosts and all(p.ok for p in self.plants)


def plant_violation(
    layout: Layout,
    rule: str,
    lambda_: int,
    snippets: "dict[str, tuple] | None" = None,
) -> Layout:
    """``layout`` plus ``rule``'s snippet placed clear of its artwork."""
    boxes, _labels = instantiate(layout)
    xmax = max((box.xmax for _layer, box in boxes), default=0)
    ymin = min((box.ymin for _layer, box in boxes), default=0)
    snippet = (snippets or VIOLATION_SNIPPETS)[rule]
    min_x = min(x1 for _layer, x1, _y1, _x2, _y2 in snippet)
    dx = xmax + (PLANT_CLEARANCE - min_x) * lambda_
    dy = ymin
    for layer, x1, y1, x2, y2 in snippet:
        layout.top.add_box(
            layer,
            Box(
                dx + x1 * lambda_,
                dy + y1 * lambda_,
                dx + x2 * lambda_,
                dy + y2 * lambda_,
            ),
        )
    return layout


def run_drc_self_test(
    tech: Technology | None = None,
    *,
    hosts: "dict[str, Callable[[int], Layout]] | None" = None,
    do_shrink: bool = True,
    max_probes: int = 200,
    progress: "Callable[[str], None] | None" = None,
) -> SelfTestResult:
    """Plant every violation class into every host and check detection.

    Hosts and snippets follow ``tech``'s deck: the planted geometry is
    rewritten into the deck's layer names and restricted to the rules
    the deck enables, and the clean host cells are the ones drawn in
    that deck (:data:`DECK_HOSTS`).
    """
    tech = tech or NMOS()
    hosts = hosts if hosts is not None else hosts_for(tech)
    snippets = violation_snippets_for(tech)
    say = progress or (lambda line: None)

    def fired(layout: Layout, rule: str) -> bool:
        report = run_drc(layout, tech, attribute=False)
        return any(d.rule == rule for d in report.diagnostics)

    clean: list[str] = []
    dirty: list[str] = []
    for name, factory in hosts.items():
        report = run_drc(factory(tech.lambda_), tech, attribute=False)
        if report.diagnostics:
            dirty.append(name)
            say(f"host {name} is NOT clean: {report.rule_ids()}")
        else:
            clean.append(name)

    plants: list[PlantResult] = []
    for rule in snippets:
        for name in clean:
            layout = plant_violation(
                hosts[name](tech.lambda_), rule, tech.lambda_, snippets
            )
            result = PlantResult(rule=rule, host=name, caught=fired(layout, rule))
            if not result.caught:
                say(f"{rule} planted in {name}: MISSED")
            elif do_shrink:
                result.shrunk = shrink(
                    layout,
                    lambda candidate: fired(candidate, rule),
                    max_probes=max_probes,
                )
                result.shrunk_still_fails = fired(result.shrunk.layout, rule)
                say(
                    f"{rule} planted in {name}: caught, shrunk "
                    f"{result.shrunk.before} -> {result.shrunk.after} "
                    f"primitives"
                )
            else:
                say(f"{rule} planted in {name}: caught")
            plants.append(result)
    return SelfTestResult(clean_hosts=clean, dirty_hosts=dirty, plants=plants)
