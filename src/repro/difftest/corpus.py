"""The persisted failure corpus.

Every disagreement the driver finds becomes one directory under the
corpus root, named deterministically from the iteration seed and the
disagreeing oracle pair (re-running the same command overwrites the same
entry rather than accumulating duplicates):

    <corpus>/<seed>-<left>-vs-<right>/
        repro.cif       the minimized layout (the thing to debug)
        original.cif    the full generated layout that first failed
        REPORT.md       which oracles disagree, on what, and how to rerun

CIF is the exchange format on purpose: a repro loads back through the
normal parser, so ``ace-extract`` and the test suite can replay it with
no difftest machinery involved.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..cif import Layout
from ..cif.writer import write as write_cif
from .shrink import ShrinkResult


@dataclass(frozen=True)
class Mismatch:
    """One disagreeing oracle pair on one case."""

    left: str
    right: str
    kind: str  # structure | sizes | crash
    reason: str
    device_counts: tuple = (0, 0)
    net_counts: tuple = (0, 0)

    def headline(self) -> str:
        return f"{self.left} vs {self.right}: {self.kind} -- {self.reason}"


@dataclass
class FailureCase:
    """Everything recorded about one found disagreement."""

    seed: int
    description: str
    grid_aligned: bool
    mismatches: list[Mismatch]
    original: Layout
    shrunk: "ShrinkResult | None" = None
    fault: "str | None" = None
    path: "str | None" = None

    @property
    def minimized(self) -> Layout:
        return self.shrunk.layout if self.shrunk else self.original

    def entry_name(self) -> str:
        first = self.mismatches[0]
        return f"{self.seed:010d}-{first.left}-vs-{first.right}"


def write_entry(corpus_dir: str, case: FailureCase, command: str) -> str:
    """Persist ``case`` under ``corpus_dir``; returns the entry path."""
    entry = os.path.join(corpus_dir, case.entry_name())
    os.makedirs(entry, exist_ok=True)
    with open(os.path.join(entry, "repro.cif"), "w") as handle:
        handle.write(write_cif(case.minimized))
    with open(os.path.join(entry, "original.cif"), "w") as handle:
        handle.write(write_cif(case.original))
    with open(os.path.join(entry, "REPORT.md"), "w") as handle:
        handle.write(render_report(case, command))
    case.path = entry
    return entry


def render_report(case: FailureCase, command: str) -> str:
    lines = [
        f"# difftest failure: seed {case.seed}",
        "",
        f"- generator notes: `{case.description}`",
        f"- grid aligned: {case.grid_aligned}",
    ]
    if case.fault:
        lines.append(
            f"- **injected fault** `{case.fault}` was armed (self-test "
            f"mode); this is a manufactured bug, not a real one"
        )
    lines += ["", "## Disagreements", ""]
    for mismatch in case.mismatches:
        lines.append(f"- `{mismatch.left}` vs `{mismatch.right}`: "
                     f"**{mismatch.kind}** -- {mismatch.reason}")
        if mismatch.kind != "crash":
            lines.append(
                f"  (devices {mismatch.device_counts[0]} vs "
                f"{mismatch.device_counts[1]}, nets "
                f"{mismatch.net_counts[0]} vs {mismatch.net_counts[1]})"
            )
    lines += ["", "## Shrink", ""]
    if case.shrunk:
        lines.append(
            f"- {case.shrunk.before} -> {case.shrunk.after} primitives in "
            f"{case.shrunk.probes} probes"
            + (" (hierarchy flattened)" if case.shrunk.flattened else "")
        )
    else:
        lines.append("- shrinking disabled; repro.cif equals original.cif")
    lines += [
        "",
        "## Reproduce",
        "",
        "```sh",
        command,
        "```",
        "",
        "`repro.cif` replays through any oracle, e.g. "
        "`ace-extract repro.cif` vs `ace-extract --hierarchical repro.cif`.",
        "",
    ]
    return "\n".join(lines)
