"""The oracle registry: every independent implementation of extraction.

An *oracle* maps a layout to a circuit.  The repo has nine -- the flat
edge-based scanline (ACE), the same scanline on the vectorized numpy
strip engine (``ace-numpy``, registered only when numpy imports, with
byte-for-byte wirelist parity against the python engine enforced inside
the runner), serial and parallel HEXT, the extraction *service*
(parallel HEXT round-tripped through the long-lived daemon, again with
byte parity enforced), the *fleet* (the same round trip through the
sharded multi-daemon router), banded out-of-core streaming
(``ace-stream``, byte parity at two band heights enforced), and the two
historical baselines -- and the
whole correctness argument is that they must agree on every layout, up
to net renumbering.  Each oracle declares two capabilities the driver
respects:

``grid_exact``
    trustworthy on off-lambda-grid coordinates.  The fixed-grid raster
    scan snaps edges outward (the constraint the ACE paper criticizes),
    so it is excluded from off-grid cases rather than reported as buggy.

``sizes_exact``
    device L/W/area are bit-exact and comparable.  True for the scanline
    family (and covered by their equivalence tests); the baselines use
    approximate sizing models, so only their *structure* is checked.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from typing import Callable

from ..baselines import extract_polyflat, extract_raster
from ..cif import Layout
from ..cif import write as write_cif
from ..core import Circuit, extract
from ..core.stripengine import numpy_available
from ..frontend import GeometryStream
from ..hext import hext_extract
from ..hext.wirelist import to_hierarchical_wirelist
from ..tech import Technology
from ..wirelist import (
    FlatCircuit,
    circuit_to_flat,
    to_wirelist,
    write_wirelist,
)


@dataclass(frozen=True)
class Oracle:
    """One extraction implementation plus its comparability contract."""

    name: str
    description: str
    grid_exact: bool
    sizes_exact: bool
    runner: Callable[[Layout, Technology], Circuit]
    #: deck names this oracle is validated for; ``None`` means the
    #: implementation is deck-agnostic (it reads every layer role from
    #: the compiled technology and handles any valid deck).
    decks: "tuple[str, ...] | None" = None

    def supports_deck(self, deck_name: str) -> bool:
        return self.decks is None or deck_name in self.decks

    def run(self, layout: Layout, tech: Technology) -> "OracleResult":
        circuit = self.runner(layout, tech)
        return OracleResult(
            oracle=self.name,
            flat=circuit_to_flat(circuit),
            sizes=tuple(
                sorted(
                    (d.kind, d.area, round(d.width, 6), round(d.length, 6))
                    for d in circuit.devices
                )
            ),
        )


@dataclass(frozen=True)
class OracleResult:
    """What one oracle computed, reduced to comparable form."""

    oracle: str
    flat: FlatCircuit
    sizes: tuple


class ServiceParityError(AssertionError):
    """The daemon's wirelist bytes diverged from the in-process ones."""


class EngineParityError(AssertionError):
    """The numpy strip engine's wirelist bytes diverged from python's."""


class StreamParityError(AssertionError):
    """The streamed wirelist bytes diverged from the in-memory ones."""


def _stream_extract_oracle(layout: Layout, tech: Technology) -> Circuit:
    """Banded streaming extraction, byte-checked against in-memory.

    Streaming promises byte-identical wirelists at *any* band plan, so
    this oracle sweeps the layout at two band heights (a handful of
    bands, and many small bands) and compares each against the in-memory
    flat extraction before the driver sees the circuit.  Every fuzzed
    layout thereby cross-checks band retirement, spill, and incremental
    emission against all other oracles.
    """
    from ..streaming import stream_extract

    reference = extract(layout, tech)
    expected = write_wirelist(
        to_wirelist(reference, name="difftest.cif", tech=tech)
    )
    stream = GeometryStream(layout)
    bbox = stream.chip_bbox
    height = (bbox.ymax - bbox.ymin) if bbox else 0
    for band_height in {max(1, height // 3), max(1, height // 13)}:
        report = stream_extract(
            layout, tech, name="difftest.cif", band_height=band_height
        )
        if report.text != expected:
            raise StreamParityError(
                f"streamed wirelist at band height {band_height} differs "
                f"from the in-memory one ({len(report.text)} vs "
                f"{len(expected)} bytes)"
            )
    return reference


def _numpy_engine_extract(layout: Layout, tech: Technology) -> Circuit:
    """Extract with the numpy strip engine, then demand byte parity.

    The strip engines promise *byte-identical* wirelists — a stronger
    contract than the structural equivalence the difftest comparator
    checks — so this oracle runs both engines on every layout and
    raises :class:`EngineParityError` on any byte divergence before the
    driver ever sees the circuit.  Registered only when numpy imports.
    """
    fast = extract(layout, tech, engine="numpy")
    reference = extract(layout, tech, engine="python")
    fast_text = write_wirelist(
        to_wirelist(fast, name="difftest.cif", tech=tech)
    )
    ref_text = write_wirelist(
        to_wirelist(reference, name="difftest.cif", tech=tech)
    )
    if fast_text != ref_text:
        raise EngineParityError(
            "numpy strip engine wirelist differs from the python "
            f"engine's ({len(fast_text)} vs {len(ref_text)} bytes)"
        )
    return fast


_SERVICE_CLIENT = None


def _service_client():
    """The lazily started shared daemon (one per difftest process).

    Started on the first layout the ``service`` oracle sees and torn
    down atexit, so a difftest run pays one daemon start, not one per
    iteration — and every iteration after the first also exercises the
    daemon's cross-request warm memo on a *different* layout.
    """
    global _SERVICE_CLIENT
    if _SERVICE_CLIENT is None:
        from ..service import ExtractionService, ServiceClient, ServiceConfig

        service = ExtractionService(
            ServiceConfig(port=0, workers=2, quiet=True)
        )
        service.start()
        atexit.register(service.close)
        _SERVICE_CLIENT = ServiceClient(port=service.port, timeout=120.0)
    return _SERVICE_CLIENT


def _service_extract(layout: Layout, tech: Technology) -> Circuit:
    """Round-trip through the daemon, then demand byte parity.

    The daemon serves the layout with the same configuration as the
    in-process ``hext-par`` oracle (hierarchical, 2 workers).  The two
    wirelists must agree *byte for byte* — not just up to renumbering —
    because serving from a warm memo, a worker pool, or the result
    cache may move time but never bytes.  Any divergence raises
    :class:`ServiceParityError`, which the difftest driver reports like
    any other oracle failure.
    """
    local = hext_extract(layout, tech, jobs=2)
    expected = write_wirelist(
        to_hierarchical_wirelist(local, name="difftest.cif")
    )
    deck = tech.deck
    result = _service_client().extract(
        write_cif(layout),
        name="difftest.cif",
        hext=True,
        jobs=2,
        lambda_=tech.lambda_,
        deck=deck.name if deck is not None else "nmos",
        wait_timeout=120.0,
    )
    if result["wirelist"] != expected:
        raise ServiceParityError(
            "daemon wirelist differs from in-process hext-par "
            f"({len(result['wirelist'])} vs {len(expected)} bytes)"
        )
    return local.circuit


_FLEET_CLIENT = None


def _fleet_client():
    """A lazily started two-shard fleet (router + in-process daemons).

    Same lifecycle economics as :func:`_service_client`: one fleet per
    difftest process, torn down atexit.  Two shards make the consistent-
    hash ring real — across a difftest run the fuzzed layouts spread
    over both shards, so routing, the proxy rewrite, and the fleet job
    table all sit in the byte-parity loop.
    """
    global _FLEET_CLIENT
    if _FLEET_CLIENT is None:
        from ..fleet import FleetRouter, RouterConfig
        from ..service import ExtractionService, ServiceClient, ServiceConfig

        shards = []
        for index in range(2):
            service = ExtractionService(
                ServiceConfig(
                    port=0, workers=2, quiet=True, shard=f"shard{index}"
                )
            )
            service.start()
            atexit.register(service.close)
            shards.append((f"shard{index}", "127.0.0.1", service.port))
        router = FleetRouter(
            shards, RouterConfig(port=0, quiet=True, health_interval=5.0)
        )
        router.start()
        atexit.register(router.close)
        _FLEET_CLIENT = ServiceClient(port=router.port, timeout=120.0)
    return _FLEET_CLIENT


class FleetParityError(AssertionError):
    """The fleet's wirelist bytes diverged from the in-process ones."""


def _fleet_extract(layout: Layout, tech: Technology) -> Circuit:
    """Round-trip through the sharded fleet, then demand byte parity.

    The contract is the ``service`` oracle's, one tier up: routing a
    job through the async front-end to whichever shard the hash ring
    picks may move *where* the work runs but never the bytes that come
    back.
    """
    local = hext_extract(layout, tech, jobs=2)
    expected = write_wirelist(
        to_hierarchical_wirelist(local, name="difftest.cif")
    )
    deck = tech.deck
    result = _fleet_client().extract(
        write_cif(layout),
        name="difftest.cif",
        hext=True,
        jobs=2,
        lambda_=tech.lambda_,
        deck=deck.name if deck is not None else "nmos",
        wait_timeout=120.0,
    )
    if result["wirelist"] != expected:
        raise FleetParityError(
            "fleet wirelist differs from in-process hext-par "
            f"({len(result['wirelist'])} vs {len(expected)} bytes)"
        )
    return local.circuit


ORACLES: dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        Oracle(
            "ace",
            "flat edge-based scanline (the paper's extractor)",
            grid_exact=True,
            sizes_exact=True,
            runner=lambda layout, tech: extract(layout, tech),
        ),
        Oracle(
            "hext",
            "hierarchical window extraction, serial",
            grid_exact=True,
            sizes_exact=True,
            runner=lambda layout, tech: hext_extract(layout, tech).circuit,
        ),
        Oracle(
            "hext-par",
            "hierarchical window extraction over 2 worker processes",
            grid_exact=True,
            sizes_exact=True,
            runner=lambda layout, tech: hext_extract(
                layout, tech, jobs=2
            ).circuit,
        ),
        Oracle(
            "service",
            "hext-par round-tripped through the extraction daemon "
            "(byte-for-byte parity enforced)",
            grid_exact=True,
            sizes_exact=True,
            runner=_service_extract,
            # The daemon protocol names decks; only builtin names can
            # cross the wire, so custom deck files are gated out here.
            decks=("nmos", "cmos"),
        ),
        Oracle(
            "fleet",
            "hext-par through a two-shard fleet (router + consistent "
            "hashing; byte-for-byte parity enforced)",
            grid_exact=True,
            sizes_exact=True,
            runner=_fleet_extract,
            decks=("nmos", "cmos"),
        ),
        *(
            (
                Oracle(
                    "ace-numpy",
                    "flat scanline on the vectorized numpy strip engine "
                    "(byte-for-byte parity with the python engine "
                    "enforced)",
                    grid_exact=True,
                    sizes_exact=True,
                    runner=_numpy_engine_extract,
                ),
            )
            if numpy_available()
            else ()
        ),
        Oracle(
            "ace-stream",
            "banded out-of-core streaming extraction (byte-for-byte "
            "parity with the in-memory path enforced at two band "
            "heights)",
            grid_exact=True,
            sizes_exact=True,
            runner=_stream_extract_oracle,
        ),
        Oracle(
            "raster",
            "fixed-grid raster scan (Partlist-style baseline)",
            grid_exact=False,
            sizes_exact=False,
            runner=lambda layout, tech: extract_raster(layout, tech),
            decks=("nmos", "cmos"),
        ),
        Oracle(
            "polyflat",
            "whole-chip region merging (Cifplot-style baseline)",
            grid_exact=True,
            sizes_exact=False,
            runner=lambda layout, tech: extract_polyflat(layout, tech),
            decks=("nmos", "cmos"),
        ),
    )
}

#: Default oracle order: the reference (flat ACE) first.
DEFAULT_ORACLES = tuple(ORACLES)


def select_oracles(names: "tuple[str, ...] | None") -> "tuple[Oracle, ...]":
    chosen = names or DEFAULT_ORACLES
    unknown = [name for name in chosen if name not in ORACLES]
    if unknown:
        raise ValueError(
            f"unknown oracle(s) {unknown}; choose from {sorted(ORACLES)}"
        )
    if len(chosen) < 2:
        raise ValueError("differential testing needs at least two oracles")
    return tuple(ORACLES[name] for name in chosen)
