"""Seeded, technology-rule-aware random layout generation.

The generator does not draw uniform noise: it composes *motifs* that
exercise the extraction rules the oracles implement -- transistor
crossings, contact cuts, buried gate-source ties, depletion implants --
plus the near-miss geometry where extractors historically disagree:
edges that exactly abut, boxes meeting at a zero-overlap corner,
off-grid (sub-lambda) coordinates, and top-level straps that cross
instance boundaries so transistors straddle HEXT windows.

Everything is derived from one integer seed, so any failure is
reproducible from its seed alone; layouts additionally round-trip
through the CIF writer, which is how repros are persisted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..cif import Label, Layout
from ..frontend import instantiate
from ..geometry import Box, Polygon, Transform
from ..tech import DEFAULT_LAMBDA
from ..workloads import random_squares

#: Leaf-cell frame edge in lambda (cells are placed at this pitch).
FRAME = 12

#: Conducting layers a label may anchor to.
_LABEL_LAYERS = ("NM", "NP", "ND")

#: Label-name pool; repeats are fine (two rails may share a user name).
_NAMES = ("VDD", "GND", "IN", "OUT", "A", "B", "PHI1", "BL")

#: Sub-lambda coordinate offsets (centimicrons) used for off-grid cases.
_OFFGRID = (30, 50, 70, 110, 130)


@dataclass(frozen=True)
class GenProfile:
    """Knobs for the generator; the defaults are the fuzzing profile."""

    max_cells: int = 2
    min_motifs: int = 2
    max_motifs: int = 5
    grid: int = 3  # instance placement grid is grid x grid
    max_instances: int = 5
    p_hierarchy: float = 0.75
    p_nested: float = 0.4  # wrap the instances in an extra level
    p_polygon: float = 0.25
    p_wire: float = 0.2
    p_offgrid: float = 0.15
    p_label: float = 0.6
    p_squares: float = 0.2  # splice a seeded random_squares block
    max_straps: int = 3
    #: motif -> weight; see the ``_motif_*`` builders below.
    motif_weights: tuple = (
        ("plain", 3),
        ("transistor", 4),
        ("load", 3),
        ("contact", 2),
        ("abut", 2),
        ("corner", 1),
    )


DEFAULT_PROFILE = GenProfile()

#: Profile biased toward buried-contact motifs; the fault-injection
#: self-test uses it so every iteration can trip the armed fault.
FAULT_HUNT_PROFILE = GenProfile(
    p_hierarchy=0.5,
    p_squares=0.0,
    motif_weights=(
        ("plain", 1),
        ("transistor", 2),
        ("load", 5),
        ("contact", 1),
        ("abut", 1),
        ("corner", 1),
    ),
)


@dataclass(frozen=True)
class GeneratedCase:
    """One fuzz case: the layout plus what the driver needs to know."""

    seed: int
    layout: Layout
    #: all coordinates are multiples of the technology lambda; the
    #: fixed-grid raster oracle is only trustworthy when this holds.
    grid_aligned: bool
    description: str


#: The eight manhattan orientations (same set HEXT memoizes under).
_ORIENTATIONS = (
    Transform.identity(),
    Transform.mirror_x(),
    Transform.mirror_y(),
    Transform.rotation(0, 1),
    Transform.rotation(-1, 0),
    Transform.rotation(0, -1),
    Transform.mirror_x().then(Transform.rotation(0, 1)),
    Transform.mirror_y().then(Transform.rotation(0, 1)),
)


def generate_layout(
    seed: int,
    lambda_: int = DEFAULT_LAMBDA,
    profile: GenProfile = DEFAULT_PROFILE,
) -> GeneratedCase:
    """Build the layout for ``seed``; equal seeds give equal layouts."""
    rng = random.Random(seed)
    layout = Layout()
    notes: list[str] = []
    s = lambda_  # lambda units -> centimicrons

    def clamp_box(layer: str, x1: int, y1: int, x2: int, y2: int) -> "tuple[str, Box] | None":
        x1, x2 = max(0, min(x1, x2)), min(FRAME, max(x1, x2))
        y1, y2 = max(0, min(y1, y2)), min(FRAME, max(y1, y2))
        if x1 >= x2 or y1 >= y2:
            return None
        return layer, Box(x1 * s, y1 * s, x2 * s, y2 * s)

    def fill_symbol(symbol) -> None:
        motifs = rng.randint(profile.min_motifs, profile.max_motifs)
        names = [m for m, w in profile.motif_weights for _ in range(w)]
        for _ in range(motifs):
            motif = rng.choice(names)
            for placed in _MOTIFS[motif](rng):
                clamped = clamp_box(*placed)
                if clamped is not None:
                    symbol.add_box(*clamped)
            notes.append(motif)
        if rng.random() < profile.p_polygon:
            symbol.add_polygon(*_l_polygon(rng, s))
            notes.append("polygon")
        if rng.random() < profile.p_wire:
            symbol.add_wire(*_wire(rng, s))
            notes.append("wire")

    hierarchical = rng.random() < profile.p_hierarchy
    span = profile.grid * FRAME  # top-level canvas edge in lambda
    if hierarchical:
        cells = [
            layout.define(i + 1)
            for i in range(rng.randint(1, profile.max_cells))
        ]
        for cell in cells:
            fill_symbol(cell)
        slots = [
            (gx, gy)
            for gx in range(profile.grid)
            for gy in range(profile.grid)
        ]
        rng.shuffle(slots)
        parent = layout.top
        if rng.random() < profile.p_nested:
            parent = layout.define(100)
            copies = rng.randint(1, 2)
            for k in range(copies):
                layout.top.add_call(
                    100, Transform.translation(0, k * (span + FRAME) * s)
                )
            notes.append(f"nested x{copies}")
        half = FRAME * s // 2
        for gx, gy in slots[: rng.randint(1, profile.max_instances)]:
            cell = rng.choice(cells)
            orientation = rng.choice(_ORIENTATIONS)
            placed = (
                Transform.translation(-half, -half)
                .then(orientation)
                .then(
                    Transform.translation(
                        half + gx * FRAME * s, half + gy * FRAME * s
                    )
                )
            )
            parent.add_call(cell.number, placed)
        notes.append(f"cells={len(cells)}")
    else:
        fill_symbol(layout.top)

    # Top-level straps: long boxes crossing instance (window) boundaries,
    # so channels and nets straddle HEXT windows; near-miss variants abut
    # frame edges exactly or land off the lambda grid.
    grid_aligned = True
    for _ in range(rng.randint(0, profile.max_straps)):
        layer = rng.choice(("NM", "NP", "ND"))
        if rng.random() < 0.5:  # horizontal
            y = rng.randrange(0, span - 2)
            box = Box(0, y * s, span * s, (y + 2) * s)
        else:
            x = rng.randrange(0, span - 2)
            box = Box(x * s, 0, (x + 2) * s, span * s)
        if rng.random() < profile.p_offgrid:
            dx, dy = rng.choice(_OFFGRID), rng.choice(_OFFGRID)
            box = box.translated(dx, dy)
            grid_aligned = False
            notes.append("offgrid")
        layout.top.add_box(layer, box)
        notes.append(f"strap:{layer}")

    # Optionally splice a seeded Bentley-Haken-Hon random-squares block
    # beside the canvas (exercises the workload seed plumbing end to end).
    if rng.random() < profile.p_squares:
        n = rng.randint(2, 6)
        block = random_squares(n, seed=rng.randrange(1 << 30), lambda_=lambda_)
        shift = (span + 4) * s
        for layer, box in block.top.boxes:
            layout.top.add_box(layer, box.translated(shift, 0))
        notes.append(f"squares={n}")

    # Labels anchor the netlist comparison; place them at the centers of
    # top-level boxes, but only where the point sits strictly off every
    # geometry edge in the whole flattened artwork.  A point exactly on a
    # region boundary (say, the edge between a channel and its drain) has
    # underspecified attachment -- the oracles legitimately differ there,
    # so the fuzzer must not manufacture that ambiguity (DIFFTESTING.md).
    candidates = [
        (layer, box)
        for layer, box in layout.top.boxes
        if layer in _LABEL_LAYERS
    ]
    rng.shuffle(candidates)
    placed_boxes = [box for _, box in instantiate(layout)[0]]
    for layer, box in candidates[:2]:
        if rng.random() < profile.p_label:
            cx = (box.xmin + box.xmax) // 2
            cy = (box.ymin + box.ymax) // 2
            if _on_any_edge(cx, cy, placed_boxes):
                continue
            layout.top.add_label(Label(rng.choice(_NAMES), cx, cy, layer))
            notes.append("label")

    layout.validate()
    return GeneratedCase(
        seed=seed,
        layout=layout,
        grid_aligned=grid_aligned,
        description=" ".join(notes) or "empty",
    )


# ----------------------------------------------------------------------
# motifs: each returns (layer, x1, y1, x2, y2) tuples in lambda, local
# to a FRAME x FRAME cell frame (the caller clamps and scales)
# ----------------------------------------------------------------------


def _motif_plain(rng: random.Random):
    layer = rng.choice(("NM", "NP", "ND", "NI"))
    x, y = rng.randint(0, 9), rng.randint(0, 9)
    return [(layer, x, y, x + rng.randint(2, 6), y + rng.randint(2, 6))]


def _motif_transistor(rng: random.Random):
    """A poly line crossing a diffusion strip; sometimes depletion."""
    x, y = rng.randint(1, 8), rng.randint(0, 3)
    ym = y + rng.randint(2, 4)
    out = [
        ("ND", x, y, x + 2, y + 8),
        ("NP", x - 3, ym, x + 5, ym + 2),
    ]
    if rng.random() < 0.3:
        out.append(("NI", x - 1, ym - 1, x + 3, ym + 3))
    return out


def _motif_load(rng: random.Random):
    """A depletion-load-style buried gate-source tie.

    The gate poly abuts a poly tab that a buried contact ties to the
    diffusion spine: with the ``buried-skip`` fault the tie opens, and
    with ``channel-under-buried`` the tab grows a phantom channel --
    this motif is what makes both faults observable.
    """
    x, y = rng.randint(2, 8), rng.randint(0, 1)
    return [
        ("ND", x, y, x + 2, y + 10),
        ("NP", x - 2, y + 4, x + 4, y + 6),
        ("NP", x, y + 6, x + 2, y + 9),
        ("NB", x, y + 6, x + 2, y + 9),
    ]


def _motif_contact(rng: random.Random):
    """Metal over poly or diffusion with a cut inside the overlap."""
    base = rng.choice(("NP", "ND"))
    x, y = rng.randint(0, 7), rng.randint(0, 7)
    return [
        (base, x, y, x + 4, y + 2),
        ("NM", x + 1, y - 1, x + 5, y + 3),
        ("NC", x + 1, y, x + 3, y + 2),
    ]


def _motif_abut(rng: random.Random):
    """Two boxes sharing an edge exactly (must conduct, once)."""
    layer = rng.choice(("NM", "NP", "ND"))
    x, y = rng.randint(0, 5), rng.randint(0, 8)
    return [
        (layer, x, y, x + 3, y + 2),
        (layer, x + 3, y, x + 6, y + 2),
    ]


def _motif_corner(rng: random.Random):
    """Two boxes meeting only at a corner (must NOT conduct)."""
    layer = rng.choice(("NM", "NP", "ND"))
    x, y = rng.randint(0, 6), rng.randint(0, 6)
    return [
        (layer, x, y, x + 3, y + 3),
        (layer, x + 3, y + 3, x + 6, y + 6),
    ]


_MOTIFS = {
    "plain": _motif_plain,
    "transistor": _motif_transistor,
    "load": _motif_load,
    "contact": _motif_contact,
    "abut": _motif_abut,
    "corner": _motif_corner,
}


def _l_polygon(rng: random.Random, s: int):
    """A manhattan L on the lambda grid (fractures exactly)."""
    layer = rng.choice(("NM", "NP", "ND"))
    x, y = rng.randint(0, 4) * s, rng.randint(0, 4) * s
    a, b = rng.randint(2, 4) * s, rng.randint(2, 4) * s
    return layer, Polygon.from_points(
        [
            (x, y),
            (x + a + b, y),
            (x + a + b, y + a),
            (x + a, y + a),
            (x + a, y + a + b),
            (x, y + a + b),
        ]
    )


def _wire(rng: random.Random, s: int):
    """An even-width manhattan wire with 2-3 points."""
    layer = rng.choice(("NM", "NP", "ND"))
    x, y = rng.randint(1, 5) * s, rng.randint(1, 5) * s
    points = [(x, y), (x + rng.randint(2, 6) * s, y)]
    if rng.random() < 0.5:
        points.append((points[-1][0], y + rng.randint(2, 6) * s))
    return layer, 2 * s, tuple(points)


def _on_any_edge(x: int, y: int, boxes: "list[Box]") -> bool:
    """True if the point lies on the boundary of any box.

    Every derived-region edge (channel boundaries, subtraction cuts) is a
    subset of some source box's edge, so avoiding all box edges keeps a
    label point strictly interior or strictly exterior to every region
    any oracle computes.
    """
    for box in boxes:
        if (
            x in (box.xmin, box.xmax) and box.ymin <= y <= box.ymax
        ) or (
            y in (box.ymin, box.ymax) and box.xmin <= x <= box.xmax
        ):
            return True
    return False


def iteration_seed(seed: int, index: int) -> int:
    """The per-iteration sub-seed: stable, well spread, positive."""
    return (seed * 1_000_003 + index * 7_919 + 0x5F0F) & 0x7FFFFFFF


# ----------------------------------------------------------------------
# deck retargeting
# ----------------------------------------------------------------------

#: The canonical layer names the motifs draw in (the NMOS deck's).
CANONICAL_LAYERS = ("NM", "NP", "ND", "NC", "NI", "NB", "NG")


def deck_layer_map(tech) -> "dict[str, str | None]":
    """Canonical generator layers -> the target deck's role layers.

    The motifs are written against the NMOS layer names; a deck with
    different names (or without some role -- e.g. no buried windows)
    gets the same geometry with each canonical layer rewritten to the
    layer holding that role in the deck.  ``None`` means the role does
    not exist and its geometry is dropped.
    """
    from ..tech import ABSENT_LAYER, scan_layers

    roles = scan_layers(tech)

    def role(name: str) -> "str | None":
        return None if name == ABSENT_LAYER else name

    return {
        "NM": roles.metal,
        "NP": roles.poly,
        "ND": roles.diff,
        "NC": roles.contact,
        "NI": role(roles.marker),
        "NB": role(roles.buried),
        "NG": None,
    }


def remap_layout(layout: Layout, mapping: "dict[str, str | None]") -> Layout:
    """A copy of ``layout`` with every layer rewritten through ``mapping``.

    Geometry on a layer mapped to ``None`` is dropped; layers absent
    from the mapping pass through unchanged.  Symbol numbers, calls,
    transforms, and label positions are preserved, so the remapped
    layout exercises the same hierarchy and the same coordinates.
    """
    out = Layout()

    def fill(src, dst) -> None:
        for layer, box in src.boxes:
            target = mapping.get(layer, layer)
            if target is not None:
                dst.add_box(target, box)
        for layer, polygon in src.polygons:
            target = mapping.get(layer, layer)
            if target is not None:
                dst.add_polygon(target, polygon)
        for layer, width, points in src.wires:
            target = mapping.get(layer, layer)
            if target is not None:
                dst.add_wire(target, width, points)
        for call in src.calls:
            dst.add_call(call.symbol, call.transform)
        for label in src.labels:
            target = (
                mapping.get(label.layer, label.layer)
                if label.layer is not None
                else None
            )
            if label.layer is not None and target is None:
                continue  # anchored to a dropped layer
            dst.add_label(
                Label(label.name, label.x, label.y, target)
            )

    for number, symbol in layout.symbols.items():
        fill(symbol, out.define(number))
    fill(layout.top, out.top)
    out.validate()
    return out


def retarget_case(case: GeneratedCase, tech) -> GeneratedCase:
    """``case`` rewritten for ``tech``'s deck (identity for NMOS names).

    The rng stream is untouched -- retargeting is a pure post-pass --
    so seed N under any deck is the same geometry, just dressed in that
    deck's layers.
    """
    mapping = deck_layer_map(tech)
    identity = ("NM", "NP", "ND", "NC", "NI", "NB")
    if all(mapping.get(name) == name for name in identity):
        return case
    return GeneratedCase(
        seed=case.seed,
        layout=remap_layout(case.layout, mapping),
        grid_aligned=case.grid_aligned,
        description=case.description,
    )
