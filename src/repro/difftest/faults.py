"""Fault injection for the differential harness's self-test.

A differential harness that has never caught a bug proves nothing, so the
harness ships a way to *create* one on demand: each known fault disables
one connectivity rule inside the scanline back-end
(:data:`repro.core.scanline.FAULTS`).  With a fault armed, the
scanline-family oracles (flat ACE and both HEXT variants) all compute the
same *wrong* circuit, and the geometric baselines (``raster``,
``polyflat``) expose them -- which is exactly the disagreement the driver
must find, shrink, and persist.

Faults are process-global (a module attribute on the scanline), so they
apply to every in-process extraction including shrinking probes.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..core import scanline

#: name -> what the fault breaks, for --list-faults and reports.
KNOWN_FAULTS: dict[str, str] = {
    "buried-skip": (
        "buried contacts no longer tie poly to diffusion: every "
        "depletion-load gate-source tie opens, changing net structure"
    ),
    "channel-under-buried": (
        "channels are no longer suppressed under buried contacts: every "
        "buried poly/diffusion crossing grows a phantom transistor"
    ),
}


def set_faults(names: "frozenset[str] | set[str]") -> None:
    """Arm exactly ``names``; unknown names are rejected."""
    unknown = set(names) - set(KNOWN_FAULTS)
    if unknown:
        raise ValueError(
            f"unknown fault(s) {sorted(unknown)}; "
            f"choose from {sorted(KNOWN_FAULTS)}"
        )
    scanline.FAULTS = frozenset(names)


def active_faults() -> frozenset[str]:
    return scanline.FAULTS


@contextmanager
def inject_fault(name: "str | None"):
    """Arm ``name`` (or nothing when ``None``) for the duration."""
    previous = scanline.FAULTS
    if name is not None:
        set_faults({name})
    try:
        yield
    finally:
        scanline.FAULTS = previous
