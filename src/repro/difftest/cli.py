"""Command-line interface: ``repro-difftest``.

Normal mode fuzzes for real disagreements and exits non-zero if any are
found (the corpus then holds the minimized repros).  Self-test mode
(``--inject-fault``) arms a deliberately broken scanline rule and exits
zero only if the harness caught and shrank the manufactured bug -- the
harness testing itself.
"""

from __future__ import annotations

import argparse
import sys

from ..cli import add_version_argument
from ..tech import NMOS
from .driver import run_difftest
from .faults import KNOWN_FAULTS
from .oracles import DEFAULT_ORACLES, ORACLES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-difftest",
        description="Differential fuzzing of the extraction oracles "
        "over seeded random layouts, with failure shrinking and a "
        "persisted repro corpus.",
    )
    add_version_argument(parser)
    parser.add_argument(
        "-n", "--iterations", type=int, default=100,
        help="number of generated layouts (default 100)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed; every iteration derives a stable sub-seed",
    )
    parser.add_argument(
        "--corpus", metavar="DIR", default="difftest-corpus",
        help="directory for minimized repros (default ./difftest-corpus)",
    )
    parser.add_argument(
        "--oracles", metavar="A,B,...",
        help="comma-separated oracle subset (default: all; see "
        "--list-oracles)",
    )
    parser.add_argument(
        "--lambda", dest="lambda_", type=int, default=None,
        metavar="CENTIMICRONS", help="process lambda (default 250)",
    )
    parser.add_argument(
        "--deck", default="nmos", metavar="NAME|PATH",
        help="technology deck to fuzz under: a builtin name (nmos, "
        "cmos) or a deck JSON file; generated layouts are retargeted "
        "to the deck's layers and oracles without support for the "
        "deck are excluded (default nmos)",
    )
    parser.add_argument(
        "--max-failures", type=int, default=5,
        help="stop after this many distinct failures (default 5)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="persist failures without minimizing them",
    )
    parser.add_argument(
        "--inject-fault", choices=sorted(KNOWN_FAULTS),
        help="self-test: arm a deliberate scanline bug and require the "
        "harness to find and shrink it",
    )
    parser.add_argument(
        "--drc-self-test", action="store_true",
        help="self-test: plant each class of design-rule violation into "
        "clean host cells and require the DRC to catch and shrink it",
    )
    parser.add_argument(
        "--list-oracles", action="store_true",
        help="print the oracle registry and exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress per-failure progress lines",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_oracles:
        for name, oracle in ORACLES.items():
            flags = []
            if not oracle.grid_exact:
                flags.append("grid-aligned layouts only")
            if oracle.sizes_exact:
                flags.append("exact sizes")
            suffix = f"  [{'; '.join(flags)}]" if flags else ""
            print(f"{name:10s} {oracle.description}{suffix}")
        return 0

    oracle_names = (
        tuple(part.strip() for part in args.oracles.split(",") if part.strip())
        if args.oracles
        else DEFAULT_ORACLES
    )
    if args.deck == "nmos":
        tech = NMOS(args.lambda_) if args.lambda_ else NMOS()
    else:
        from ..lint import resolve_deck
        from ..tech import DeckError, compile_deck

        try:
            tech = compile_deck(resolve_deck(args.deck, args.lambda_))
        except (DeckError, KeyError, OSError) as exc:
            message = exc.args[0] if exc.args else exc
            print(
                f"repro-difftest: --deck {args.deck}: {message}",
                file=sys.stderr,
            )
            return 2

    def progress(line: str) -> None:
        if not args.quiet:
            print(f"difftest: {line}", file=sys.stderr)

    if args.drc_self_test:
        from .drcplant import run_drc_self_test

        result = run_drc_self_test(
            tech, do_shrink=not args.no_shrink, progress=progress
        )
        missed = sorted(
            {p.rule for p in result.plants if not p.caught}
        )
        unshrunk = sorted(
            {p.rule for p in result.plants if p.caught and not p.ok}
        )
        if result.ok:
            print(
                f"difftest: DRC self-test PASSED -- "
                f"{len(result.plants)} plant(s) over "
                f"{len(result.clean_hosts)} clean host(s), every "
                f"violation class caught and shrunk",
                file=sys.stderr,
            )
            return 0
        if result.dirty_hosts:
            print(
                "difftest: DRC self-test FAILED -- host(s) not clean: "
                + ", ".join(result.dirty_hosts),
                file=sys.stderr,
            )
        if missed:
            print(
                "difftest: DRC self-test FAILED -- missed rule(s): "
                + ", ".join(missed),
                file=sys.stderr,
            )
        if unshrunk:
            print(
                "difftest: DRC self-test FAILED -- shrink lost rule(s): "
                + ", ".join(unshrunk),
                file=sys.stderr,
            )
        return 1

    result = run_difftest(
        iterations=args.iterations,
        seed=args.seed,
        oracle_names=oracle_names,
        tech=tech,
        corpus_dir=args.corpus,
        do_shrink=not args.no_shrink,
        max_failures=args.max_failures,
        fault=args.inject_fault,
        progress=progress,
    )

    print(
        f"difftest: {result.iterations} iterations, {result.agreed} agreed, "
        f"{len(result.failures)} failure(s), "
        f"{result.raster_skips} off-grid case(s) skipped the raster oracle",
        file=sys.stderr,
    )
    for failure in result.failures:
        where = f" -> {failure.path}" if failure.path else ""
        print(
            f"difftest: seed {failure.seed}: "
            f"{failure.mismatches[0].headline()}{where}",
            file=sys.stderr,
        )

    if args.inject_fault:
        if result.failures:
            smallest = min(
                failure.shrunk.after
                for failure in result.failures
                if failure.shrunk
            ) if any(f.shrunk for f in result.failures) else None
            print(
                "difftest: self-test PASSED -- the armed fault "
                f"{args.inject_fault!r} was caught"
                + (f" and shrunk to {smallest} primitives"
                   if smallest is not None else ""),
                file=sys.stderr,
            )
            return 0
        print(
            f"difftest: self-test FAILED -- fault {args.inject_fault!r} "
            f"went undetected in {result.iterations} iterations",
            file=sys.stderr,
        )
        return 1
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
