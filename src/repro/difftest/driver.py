"""The differential driver: generate, extract everywhere, cross-check.

Each iteration derives a sub-seed, generates a layout, runs it through
every selected oracle (skipping the fixed-grid raster scan on off-grid
cases, per its declared capability), and compares all results pairwise
with the wirelist comparator -- equivalence up to net renumbering, plus
a device-size check within the scanline family.  Any disagreement (or
oracle crash) is shrunk to a minimal repro and persisted to the corpus.

The driver is a library; :mod:`repro.difftest.cli` is the command, and
the fault-injection self-test is the same loop run with a scanline rule
deliberately broken (:mod:`repro.difftest.faults`).
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Callable

from ..cif import Layout
from ..tech import NMOS, Technology
from ..wirelist import compare_netlists
from .corpus import FailureCase, Mismatch, write_entry
from .faults import inject_fault
from .generator import (
    DEFAULT_PROFILE,
    FAULT_HUNT_PROFILE,
    GenProfile,
    generate_layout,
    iteration_seed,
    retarget_case,
)
from .oracles import Oracle, OracleResult, select_oracles
from .shrink import shrink


@dataclass
class DifftestResult:
    """Outcome of one fuzzing run."""

    iterations: int = 0
    agreed: int = 0
    raster_skips: int = 0
    #: oracles excluded up front because they do not support the deck.
    deck_skips: int = 0
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_difftest(
    *,
    iterations: int,
    seed: int = 0,
    oracle_names: "tuple[str, ...] | None" = None,
    tech: "Technology | None" = None,
    corpus_dir: "str | None" = None,
    do_shrink: bool = True,
    max_failures: int = 5,
    fault: "str | None" = None,
    profile: "GenProfile | None" = None,
    progress: "Callable[[str], None] | None" = None,
) -> DifftestResult:
    """Run the harness; see the module docstring for the loop."""
    tech = tech or NMOS()
    oracles = select_oracles(oracle_names)
    oracles, deck_skips = _deck_capable(oracles, tech)
    if profile is None:
        profile = FAULT_HUNT_PROFILE if fault else DEFAULT_PROFILE
    result = DifftestResult()
    result.deck_skips = deck_skips

    with inject_fault(fault):
        for index in range(iterations):
            sub_seed = iteration_seed(seed, index)
            case = retarget_case(
                generate_layout(sub_seed, tech.lambda_, profile), tech
            )
            usable = tuple(
                oracle
                for oracle in oracles
                if case.grid_aligned or oracle.grid_exact
            )
            if len(usable) < len(oracles):
                result.raster_skips += 1
            if len(usable) < 2:
                result.iterations += 1
                continue
            mismatches = _cross_check(case.layout, usable, tech)
            result.iterations += 1
            if not mismatches:
                result.agreed += 1
                continue

            failure = FailureCase(
                seed=sub_seed,
                description=case.description,
                grid_aligned=case.grid_aligned,
                mismatches=mismatches,
                original=case.layout,
                fault=fault,
            )
            if progress:
                progress(
                    f"seed {sub_seed}: {mismatches[0].headline()}"
                )
            if do_shrink:
                pair = _disagreeing_pair(usable, mismatches[0])

                def still_fails(candidate: Layout) -> bool:
                    return bool(_cross_check(candidate, pair, tech))

                failure.shrunk = shrink(case.layout, still_fails)
                if progress and failure.shrunk:
                    progress(
                        f"seed {sub_seed}: shrunk "
                        f"{failure.shrunk.before} -> "
                        f"{failure.shrunk.after} primitives"
                    )
            if corpus_dir:
                write_entry(
                    corpus_dir, failure, _repro_command(seed, index, failure)
                )
            result.failures.append(failure)
            if len(result.failures) >= max_failures:
                break
    return result


def check_layout(
    layout: Layout,
    *,
    oracle_names: "tuple[str, ...] | None" = None,
    tech: "Technology | None" = None,
) -> "list[Mismatch]":
    """Cross-check one explicit layout (used by tests and repro replay)."""
    tech = tech or NMOS()
    oracles, _ = _deck_capable(select_oracles(oracle_names), tech)
    return _cross_check(layout, oracles, tech)


def _deck_capable(
    oracles: "tuple[Oracle, ...]", tech: Technology
) -> "tuple[tuple[Oracle, ...], int]":
    """The oracles validated for ``tech``'s deck, plus the skip count."""
    deck_name = tech.deck.name if tech.deck is not None else "nmos"
    capable = tuple(o for o in oracles if o.supports_deck(deck_name))
    if len(capable) < 2:
        raise ValueError(
            f"deck {deck_name!r} leaves {len(capable)} capable oracle(s); "
            "differential testing needs at least two"
        )
    return capable, len(oracles) - len(capable)


def _cross_check(
    layout: Layout, oracles: "tuple[Oracle, ...]", tech: Technology
) -> "list[Mismatch]":
    """Run every oracle and compare all pairs; empty means agreement."""
    results: dict[str, OracleResult] = {}
    errors: dict[str, str] = {}
    for oracle in oracles:
        try:
            results[oracle.name] = oracle.run(layout, tech)
        except Exception:
            errors[oracle.name] = traceback.format_exc(limit=2)

    mismatches: list[Mismatch] = []
    for name, trace in errors.items():
        reference = next(iter(results), None) or next(
            (other for other in errors if other != name), name
        )
        mismatches.append(
            Mismatch(
                left=name,
                right=reference,
                kind="crash",
                reason=trace.strip().splitlines()[-1],
            )
        )
    names = [oracle.name for oracle in oracles if oracle.name in results]
    for i, left in enumerate(names):
        for right in names[i + 1 :]:
            a, b = results[left], results[right]
            report = compare_netlists(a.flat, b.flat)
            if not report.equivalent:
                mismatches.append(
                    Mismatch(
                        left=left,
                        right=right,
                        kind="structure",
                        reason=report.reason,
                        device_counts=report.device_counts,
                        net_counts=report.net_counts,
                    )
                )
                continue
            left_exact = _oracle(oracles, left).sizes_exact
            right_exact = _oracle(oracles, right).sizes_exact
            if left_exact and right_exact and a.sizes != b.sizes:
                mismatches.append(
                    Mismatch(
                        left=left,
                        right=right,
                        kind="sizes",
                        reason=_size_diff(a.sizes, b.sizes),
                        device_counts=(len(a.sizes), len(b.sizes)),
                        net_counts=report.net_counts,
                    )
                )
    return mismatches


def _oracle(oracles: "tuple[Oracle, ...]", name: str) -> Oracle:
    return next(oracle for oracle in oracles if oracle.name == name)


def _disagreeing_pair(
    oracles: "tuple[Oracle, ...]", mismatch: Mismatch
) -> "tuple[Oracle, ...]":
    """The two oracles to re-run during shrinking probes (fast path)."""
    names = {mismatch.left, mismatch.right}
    pair = tuple(oracle for oracle in oracles if oracle.name in names)
    return pair if len(pair) == 2 else oracles


def _size_diff(a: tuple, b: tuple) -> str:
    only_a = [entry for entry in a if entry not in b]
    only_b = [entry for entry in b if entry not in a]
    sample = (only_a or only_b)[:1]
    return (
        f"device L/W/area multisets differ: {len(only_a)} device(s) only "
        f"in first, {len(only_b)} only in second, e.g. {sample}"
    )


def _repro_command(seed: int, index: int, failure: FailureCase) -> str:
    return (
        f"repro-difftest --seed {seed} --iterations {index + 1} "
        + (f"--inject-fault {failure.fault} " if failure.fault else "")
        + "--corpus <dir>   # iteration "
        + f"{index} is sub-seed {failure.seed}"
    )
