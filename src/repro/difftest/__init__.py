"""Differential extraction harness.

Five independent implementations of the same contract -- flat ACE, HEXT
serial and parallel, and the raster/region-merge baselines -- fuzzed
against each other over seeded random layouts, with greedy failure
shrinking, a persisted repro corpus, and a fault-injection self-test.
See ``docs/DIFFTESTING.md``.
"""

from .corpus import FailureCase, Mismatch, render_report, write_entry
from .driver import DifftestResult, check_layout, run_difftest
from .faults import KNOWN_FAULTS, active_faults, inject_fault, set_faults
from .generator import (
    DEFAULT_PROFILE,
    FAULT_HUNT_PROFILE,
    GeneratedCase,
    GenProfile,
    generate_layout,
    iteration_seed,
)
from .oracles import DEFAULT_ORACLES, ORACLES, Oracle, OracleResult, select_oracles
from .shrink import ShrinkResult, primitive_count, shrink

__all__ = [
    "DEFAULT_ORACLES",
    "DEFAULT_PROFILE",
    "FAULT_HUNT_PROFILE",
    "KNOWN_FAULTS",
    "ORACLES",
    "DifftestResult",
    "FailureCase",
    "GenProfile",
    "GeneratedCase",
    "Mismatch",
    "Oracle",
    "OracleResult",
    "ShrinkResult",
    "active_faults",
    "check_layout",
    "generate_layout",
    "inject_fault",
    "iteration_seed",
    "primitive_count",
    "render_report",
    "run_difftest",
    "select_oracles",
    "set_faults",
    "shrink",
    "write_entry",
]
