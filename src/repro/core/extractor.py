"""The public extraction API.

:func:`extract` is the whole of ACE: CIF text or a parsed layout in, a
:class:`~repro.core.netlist.Circuit` out.  :func:`extract_window` is the
modified ACE that HEXT calls per primitive window (it additionally
captures the window's boundary records).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cif import Layout, parse
from ..frontend import GeometryStream
from ..geometry import Box
from ..tech import NMOS, Technology
from .netlist import Circuit
from .scanline import ScanlineEngine
from .stats import PhaseTimer, ScanStats


@dataclass
class ExtractionReport:
    """A circuit together with the run's timers and counters."""

    circuit: Circuit
    timer: PhaseTimer
    stats: ScanStats
    frontend_stats: object = None
    options: dict = field(default_factory=dict)


def extract(
    source: "str | Layout",
    tech: Technology | None = None,
    *,
    keep_geometry: bool = False,
    resolution: int = 50,
    engine: str = "auto",
) -> Circuit:
    """Extract the circuit from a CIF string or parsed layout.

    Args:
        source: CIF text, or an already parsed :class:`Layout`.
        tech: process rules; defaults to standard NMOS.
        keep_geometry: attach per-net artwork (needed for RC
            post-processing and geometry output; off by default, as in
            the paper's normal operation).
        resolution: fracture resolution for non-manhattan geometry.
        engine: strip-engine back-end (``auto`` / ``python`` /
            ``numpy``); see docs/ENGINES.md.  Both back-ends produce
            byte-identical wirelists.

    Returns:
        The extracted :class:`Circuit`.
    """
    return extract_report(
        source,
        tech,
        keep_geometry=keep_geometry,
        resolution=resolution,
        engine=engine,
    ).circuit


def extract_report(
    source: "str | Layout",
    tech: Technology | None = None,
    *,
    keep_geometry: bool = False,
    resolution: int = 50,
    window: Box | None = None,
    jobs: "int | None" = None,
    cache: "str | None" = None,
    strip_consumers: tuple = (),
    engine: str = "auto",
    profile: bool = False,
) -> ExtractionReport:
    """Like :func:`extract` but returns timers and counters as well.

    ``jobs`` and ``cache`` are recorded in the report's options so a
    report mirrors the full CLI invocation that produced it.  The flat
    scanline itself is inherently serial (each stop depends on the
    active lists the previous stop left behind); the hierarchical
    extractor is where they take effect, by fanning the independent
    unique-window extractions out through :mod:`repro.parallel`.

    ``strip_consumers`` ride the same sweep
    (:class:`~repro.core.scanline.StripConsumer`); the design-rule
    checker attaches here so extraction and DRC share one pass.

    ``profile`` arms the scanline host's per-phase wall-clock timers
    (CLI: ``--profile``); the breakdown lands in
    ``report.stats.profile`` keyed by
    :data:`~repro.core.scanline.PROFILE_PHASES`.
    """
    tech = tech or NMOS()
    timer = PhaseTimer()
    timer.start("frontend")
    layout = parse(source) if isinstance(source, str) else source
    stream = GeometryStream(layout, resolution=resolution)
    scan = ScanlineEngine(
        tech,
        keep_geometry=keep_geometry,
        window=window,
        timer=timer,
        strip_consumers=strip_consumers,
        engine=engine,
        profile=profile,
    )
    circuit = scan.run(stream)
    return ExtractionReport(
        circuit=circuit,
        timer=timer,
        stats=scan.stats,
        frontend_stats=stream.stats,
        options={
            "keep_geometry": keep_geometry,
            "resolution": resolution,
            "window": window,
            "jobs": jobs,
            "cache": cache,
            "engine": scan.engine_name,
        },
    )


def extract_window(
    layout: Layout,
    window: Box,
    tech: Technology | None = None,
    *,
    keep_geometry: bool = False,
    resolution: int = 50,
    engine: str = "auto",
) -> Circuit:
    """HEXT's modified ACE: extract a window and its boundary interface.

    The layout is expected to contain only the window's clipped geometry;
    ``window`` supplies the boundary against which interface records are
    captured.
    """
    return extract_report(
        layout,
        tech,
        keep_geometry=keep_geometry,
        resolution=resolution,
        window=window,
        engine=engine,
    ).circuit
