"""The vectorized strip-batch engine (the ``repro[fast]`` back-end).

Strategy: per strip, each tracked layer's active intervals are
materialized once as flat ``(x1[], x2[], net[])`` int64 arrays (cached
against the host's per-layer mutation counters, so an unchanged layer is
converted exactly once, not once per strip).  All *geometry* -- channel
intersection, buried subtraction, terminal pairing, implant flags -- is
then computed as batch ``searchsorted``/gather passes over those arrays.

Byte parity with :mod:`repro.core.engine_python` is achieved *by
construction*, not by normalization afterwards:

* every ``UnionFind.make``/``union`` call is issued in exactly the order
  the python engine would issue it.  Fresh span allocation batches via
  :meth:`UnionFind.extend` (identical ids: fresh singletons never
  interact with same-strip unions, and union-by-size reads only the two
  involved roots, so decoupling makes from unions cannot change any
  outcome).  The rare multi-overlap bindings and the contact/buried
  union cascades are replayed as short python loops in sweep order.
* per-device attributes (area, gates, terminals, location, implant) are
  accumulated *columnar* with raw ids and folded by final union-find
  root at finalize.  Deferred resolution is exact because
  ``find_final(x) == find_final(find_t(x))`` and every fold is an
  order-independent reduction (sum, max, OR, set-union).
* the finalize folds themselves (net/device canonical order, terminal
  sums, two-terminal sizing) are vectorized ``lexsort``/``reduceat``
  passes producing the same keys the python engine sorts by, with
  results converted back to native python scalars so downstream float
  formatting is bit-identical.

With ``keep_geometry`` (goldens, lint CIF output) the net/device
*binding* loops fall back to exact python replay so geometry lists keep
the reference engine's find-at-append-time grouping; everything else
stays batch.  See docs/ENGINES.md for the full contract.
"""

from __future__ import annotations

from itertools import repeat

import numpy as np

from ..frontend.stream import GeometryStream
from ..geometry import Box
from .netlist import Device
from .sizing import size_device

from . import scanline as _scan
from .stripengine import StripEngine

_EMPTY = np.empty(0, dtype=np.int64)


def _sort3(
    p: "np.ndarray", a: "np.ndarray", b: "np.ndarray"
) -> "np.ndarray":
    """Row order ascending by ``(p, a, b)`` -- ``np.lexsort((b, a, p))``.

    When the three value ranges pack into one int64 (virtually always:
    ids and coordinates are far below 2**62 combined), a single-key
    argsort replaces the three stable merge passes of lexsort.  Ties are
    only ever identical rows, so the unstable sort folds identically.
    """
    if p.shape[0] == 0:
        return _EMPTY
    p0 = int(p.min())
    a0, a1 = int(a.min()), int(a.max())
    b0, b1 = int(b.min()), int(b.max())
    sa = a1 - a0 + 1
    sb = b1 - b0 + 1
    if (int(p.max()) - p0 + 1) * sa * sb <= 1 << 62:
        return np.argsort((p - p0) * (sa * sb) + (a - a0) * sb + (b - b0))
    return np.lexsort((b, a, p))


def _resolve_parents(parent: "np.ndarray") -> "np.ndarray":
    """Collapse a raw union-find parent table to roots (vectorized)."""
    while True:
        grand = parent[parent]
        if np.array_equal(grand, parent):
            return parent
        parent = grand


def _flat_targets(
    starts: "np.ndarray", counts: "np.ndarray", total: int
) -> "np.ndarray":
    """Concatenate ``range(starts[i], starts[i] + counts[i])`` for all i."""
    offsets = np.cumsum(counts) - counts
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(starts, counts)
    )


def _pair_enum(
    lo: "np.ndarray", hi: "np.ndarray"
) -> "tuple[np.ndarray, np.ndarray]":
    """Flat (source index, target index) pairs for per-span windows.

    The all-singleton case -- every span overlapping exactly one target,
    the steady state of a dense mesh -- skips the repeat/cumsum pipeline
    entirely.
    """
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    n = counts.shape[0]
    if total == n and int(counts.max()) == 1:
        return np.arange(n, dtype=np.int64), lo
    src = np.repeat(np.arange(n, dtype=np.int64), counts)
    tgt = _flat_targets(lo, counts, total)
    return src, tgt


def _overlap_windows(
    x1: "np.ndarray", x2: "np.ndarray", o_x1: "np.ndarray", o_x2: "np.ndarray"
) -> "tuple[np.ndarray, np.ndarray]":
    """Per span ``[x1, x2)``: the index window of strictly overlapping
    spans in the disjoint sorted list ``(o_x1, o_x2)``.

    Strict overlap of ``[a1, a2)`` and ``[b1, b2)`` is ``b2 > a1 and
    b1 < a2``; on disjoint sorted spans both bounds are binary searches.
    """
    lo = np.searchsorted(o_x2, x1, side="right")
    hi = np.searchsorted(o_x1, x2, side="left")
    return lo, np.maximum(hi, lo)


def _subtract_spans(
    s_x1: "np.ndarray",
    s_x2: "np.ndarray",
    h_x1: "np.ndarray",
    h_x2: "np.ndarray",
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Segments minus holes; returns (x1, x2, source segment index).

    Output pieces are in the same order the python engine's merged
    subtraction sweeps emit them: per segment, left to right.
    """
    n_seg = s_x1.shape[0]
    if h_x1.shape[0] == 0:
        return s_x1, s_x2, np.arange(n_seg, dtype=np.int64)
    lo, hi = _overlap_windows(s_x1, s_x2, h_x1, h_x2)
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return s_x1, s_x2, np.arange(n_seg, dtype=np.int64)
    if total == n_seg and int(counts.max()) == 1:
        # One hole per segment and every hole covers its segment whole:
        # the dense-mesh steady state (poly strips where every diffusion
        # span is all channel).  Nothing survives the subtraction.
        cov = (h_x1[lo] <= s_x1) & (h_x2[lo] >= s_x2)
        if cov.all():
            return _EMPTY, _EMPTY, _EMPTY
    h_tgt = _flat_targets(lo, counts, total)
    # Each segment yields counts+1 candidate pieces: (seg_x1 or a hole's
    # x2) up to (the next hole's x1 or seg_x2); empty pieces filter out.
    pieces = counts + 1
    piece_off = np.cumsum(pieces) - pieces
    size = total + n_seg
    starts = np.empty(size, dtype=np.int64)
    ends = np.empty(size, dtype=np.int64)
    starts[piece_off] = s_x1
    ends[piece_off + counts] = s_x2
    seg_idx = np.repeat(np.arange(n_seg, dtype=np.int64), counts)
    local = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    hole_pos = piece_off[seg_idx] + 1 + local
    starts[hole_pos] = h_x2[h_tgt]
    ends[hole_pos - 1] = h_x1[h_tgt]
    piece_seg = np.repeat(np.arange(n_seg, dtype=np.int64), pieces)
    keep = starts < ends
    return starts[keep], ends[keep], piece_seg[keep]


class NumpyStripEngine(StripEngine):
    """Step 2.c and the finalize folds as numpy batch passes."""

    name = "numpy"
    supports_runs = True
    wants_index_of = False

    def __init__(self, host) -> None:
        super().__init__(host)
        #: layer -> (host version, (x1[], x2[], net[]) arrays)
        self._cache: dict[str, tuple[int, tuple]] = {}
        # previous strip state, as flat arrays
        self._pv_dx1 = self._pv_dx2 = self._pv_dnet = _EMPTY
        self._pv_cx1 = self._pv_cx2 = self._pv_cdev = _EMPTY
        # previous strip state as tuple lists (keep_geometry replay only)
        self._pv_d_list: list[tuple[int, int, int]] = []
        self._pv_c_list: list[tuple[int, int, int]] = []
        # columnar accumulators: net location touches
        self._tn_scalar: list[tuple[int, int, int]] = []  # (id, y, -x)
        self._tn_chunks: list[tuple] = []  # (ids[], y[], -x[])
        self._touched = np.zeros(0, dtype=bool)  # ids already best-touched
        # columnar accumulators: device attributes, raw ids throughout
        self._area_chunks: list[tuple] = []  # (dev[], area[])
        self._gate_chunks: list[tuple] = []  # (dev[], poly net[])
        self._loc_chunks: list[tuple] = []  # (dev[], y[], -x[])
        self._impl_chunks: list = []  # dev[]
        self._term_chunks: list[tuple] = []  # (dev[], net[], length[])
        #: find-at-append-time device geometry (keep_geometry replay)
        self._dev_geo: dict[int, list[Box]] = {}
        self._net_parent: "np.ndarray | None" = None
        self._order_roots: "np.ndarray | None" = None

    # ------------------------------------------------------------------
    # layer materialization
    # ------------------------------------------------------------------

    def _layer(self, layer: str) -> tuple:
        """The layer's live intervals as ``(x1[], x2[], net[])``.

        One C-level gather from the host's columnar buffers per change:
        the result is cached against the table's version counter, and
        column cells are immutable after allocation (merges allocate new
        rows and bump the version), so a cached view stays exact.  The
        ``np.frombuffer`` views are transient -- fancy indexing copies
        the live subset out, releasing the ``array('q')`` buffer before
        the host appends to it again.
        """
        t = self.host._tables[layer]
        version = t.version
        cached = self._cache.get(layer)
        if cached is not None and cached[0] == version:
            return cached[1]
        if t.order:
            idx = np.array(t.order, dtype=np.int64)
            x1 = np.frombuffer(t.x1, dtype=np.int64)[idx]
            x2 = np.frombuffer(t.x2, dtype=np.int64)[idx]
            if layer in self.host._net_layers:
                net = np.frombuffer(t.net, dtype=np.int64)[idx]
            else:
                net = _EMPTY
            arrays = (x1, x2, net)
        else:
            arrays = (_EMPTY, _EMPTY, _EMPTY)
        self._cache[layer] = (version, arrays)
        return arrays

    # ------------------------------------------------------------------
    # strip processing (step 2.c)
    # ------------------------------------------------------------------

    def process_strip(
        self, y_lo: int, y_hi: int, stream: GeometryStream
    ) -> None:
        h = self.host
        height = y_hi - y_lo
        faults = _scan.FAULTS
        keep_geometry = h.keep_geometry

        dx1, dx2, _ = self._layer(h._diff)
        px1, px2, pnet = self._layer(h._poly)

        # Channels: diffusion AND poly AND NOT buried, remembering the
        # poly span that forms each gate.  Pair enumeration per diffusion
        # span in ascending (diff, poly) order matches the reference
        # engine's merged sweep output order.
        ch_x1 = ch_x2 = ch_net = _EMPTY
        if dx1.shape[0] and px1.shape[0]:
            lo, hi = _overlap_windows(dx1, dx2, px1, px2)
            d_src, p_tgt = _pair_enum(lo, hi)
            if d_src.shape[0]:
                ch_x1 = np.maximum(dx1[d_src], px1[p_tgt])
                ch_x2 = np.minimum(dx2[d_src], px2[p_tgt])
                ch_net = pnet[p_tgt]
                if "channel-under-buried" not in faults:
                    bx1, bx2, _ = self._layer(h._buried)
                    if bx1.shape[0]:
                        ch_x1, ch_x2, src = _subtract_spans(
                            ch_x1, ch_x2, bx1, bx2
                        )
                        ch_net = ch_net[src]

        # Conducting diffusion: diffusion minus channels.
        if ch_x1.shape[0]:
            cond_x1, cond_x2, _ = _subtract_spans(dx1, dx2, ch_x1, ch_x2)
        else:
            cond_x1, cond_x2 = dx1, dx2

        # Bind conducting spans to nets by vertical adjacency, channels
        # to device ids -- batch for the fresh/single-overlap common
        # case, exact python replay when geometry lists must be kept.
        if keep_geometry:
            cond_net, cond_list = self._bind_nets_replay(
                cond_x1, cond_x2, y_lo, y_hi
            )
            ch_dev, ch_list = self._bind_devs_replay(
                ch_x1, ch_x2, y_lo, y_hi
            )
        else:
            cond_net = self._bind(
                cond_x1, cond_x2, self._pv_dx1, self._pv_dx2, self._pv_dnet,
                h._nets, "nets_created",
            )
            ch_dev = self._bind(
                ch_x1, ch_x2, self._pv_cx1, self._pv_cx2, self._pv_cdev,
                h._devs, "devices_created",
            )
            cond_list = ch_list = None
            if cond_net.shape[0]:
                # Strips sweep strictly downward, so once an id has been
                # touched its later (lower-y) touches can never win the
                # per-root location max -- drop them at the source to
                # keep the finalize lexsort input near the net count
                # instead of nets x strips.
                touched = self._touched
                n_nets = len(h._nets)
                if touched.shape[0] < n_nets:
                    grown = np.zeros(
                        max(n_nets, touched.shape[0] * 2), dtype=bool
                    )
                    grown[: touched.shape[0]] = touched
                    self._touched = touched = grown
                fresh = ~touched[cond_net]
                if fresh.all():
                    touched[cond_net] = True
                    self._tn_chunks.append(
                        (
                            cond_net,
                            np.full(
                                cond_net.shape[0], y_hi, dtype=np.int64
                            ),
                            -cond_x1,
                        )
                    )
                elif fresh.any():
                    ids = cond_net[fresh]
                    touched[ids] = True
                    self._tn_chunks.append(
                        (
                            ids,
                            np.full(ids.shape[0], y_hi, dtype=np.int64),
                            -cond_x1[fresh],
                        )
                    )

        n_ch = ch_dev.shape[0]
        n_cond = cond_net.shape[0]

        # Device attribute columns for this strip's channel spans.
        if n_ch:
            self._area_chunks.append((ch_dev, (ch_x2 - ch_x1) * height))
            self._gate_chunks.append((ch_dev, ch_net))
            self._loc_chunks.append(
                (
                    ch_dev,
                    np.full(n_ch, y_hi, dtype=np.int64),
                    -ch_x1,
                )
            )
            ix1, ix2, _ = self._layer(h._implant)
            if ix1.shape[0]:
                ilo, ihi = _overlap_windows(ch_x1, ch_x2, ix1, ix2)
                flagged = ihi > ilo
                if flagged.any():
                    self._impl_chunks.append(ch_dev[flagged])

        # Terminal contacts.
        if n_ch:
            if n_cond:
                # horizontal: channels and conducting spans partition
                # the diffusion, so an abutting pair shares an endpoint
                # exactly -- two exact-match searches replace the zipper.
                last = n_cond - 1
                pos = np.minimum(
                    np.searchsorted(cond_x2, ch_x1), last
                )
                m = cond_x2[pos] == ch_x1
                if m.any():
                    self._term_chunks.append(
                        (
                            ch_dev[m],
                            cond_net[pos[m]],
                            np.full(int(m.sum()), height, dtype=np.int64),
                        )
                    )
                pos = np.minimum(
                    np.searchsorted(cond_x1, ch_x2), last
                )
                m = cond_x1[pos] == ch_x2
                if m.any():
                    self._term_chunks.append(
                        (
                            ch_dev[m],
                            cond_net[pos[m]],
                            np.full(int(m.sum()), height, dtype=np.int64),
                        )
                    )
            # vertical: channel below conducting diffusion of the strip above
            if self._pv_dx1.shape[0]:
                lo, hi = _overlap_windows(
                    ch_x1, ch_x2, self._pv_dx1, self._pv_dx2
                )
                src, tgt = _pair_enum(lo, hi)
                if src.shape[0]:
                    overlap = np.minimum(
                        ch_x2[src], self._pv_dx2[tgt]
                    ) - np.maximum(ch_x1[src], self._pv_dx1[tgt])
                    self._term_chunks.append(
                        (ch_dev[src], self._pv_dnet[tgt], overlap)
                    )
        if self._pv_cx1.shape[0] and n_cond:
            # vertical: conducting diffusion below a channel of the strip above
            lo, hi = _overlap_windows(
                cond_x1, cond_x2, self._pv_cx1, self._pv_cx2
            )
            src, tgt = _pair_enum(lo, hi)
            if src.shape[0]:
                overlap = np.minimum(
                    cond_x2[src], self._pv_cx2[tgt]
                ) - np.maximum(cond_x1[src], self._pv_cx1[tgt])
                self._term_chunks.append(
                    (self._pv_cdev[tgt], cond_net[src], overlap)
                )

        # Contact cuts: batch-clip every (cut x conducting layer) overlap
        # into per-cut entry lists, then replay the reference engine's
        # sorted pairwise union cascade per cut.
        if h._tables[h._contact].order:
            self._contact_unions(cond_x1, cond_x2, cond_net)

        # Buried contacts: poly x buried x conducting triple overlaps,
        # unions replayed in (buried, poly, cond) sweep order.
        if (
            h._tables[h._buried].order
            and n_cond
            and px1.shape[0]
            and "buried-skip" not in faults
        ):
            bx1, bx2, _ = self._layer(h._buried)
            lo, hi = _overlap_windows(bx1, bx2, px1, px2)
            b_src, p_tgt = _pair_enum(lo, hi)
            if b_src.shape[0]:
                q1 = np.maximum(px1[p_tgt], bx1[b_src])
                q2 = np.minimum(px2[p_tgt], bx2[b_src])
                q_net = pnet[p_tgt]
                lo2, hi2 = _overlap_windows(q1, q2, cond_x1, cond_x2)
                src2, tgt2 = _pair_enum(lo2, hi2)
                if src2.shape[0]:
                    union = h._nets.union
                    for a, b in zip(
                        q_net[src2].tolist(), cond_net[tgt2].tolist()
                    ):
                        union(a, b)

        def cond_source() -> list[tuple[int, int, int]]:
            if cond_list is not None:
                return cond_list
            return list(
                zip(cond_x1.tolist(), cond_x2.tolist(), cond_net.tolist())
            )

        h._attach_labels(y_lo, y_hi, stream, cond_source)

        if h.window is not None:
            h._capture_boundary(
                y_lo,
                y_hi,
                cond_source(),
                ch_list
                if ch_list is not None
                else list(
                    zip(ch_x1.tolist(), ch_x2.tolist(), ch_dev.tolist())
                ),
            )

        if h.strip_consumers:
            h._feed_consumers(
                y_lo,
                y_hi,
                list(zip(ch_x1.tolist(), ch_x2.tolist(), ch_net.tolist())),
            )

        self._pv_dx1, self._pv_dx2, self._pv_dnet = cond_x1, cond_x2, cond_net
        self._pv_cx1, self._pv_cx2, self._pv_cdev = ch_x1, ch_x2, ch_dev
        if keep_geometry:
            self._pv_d_list = cond_list if cond_list is not None else []
            self._pv_c_list = ch_list if ch_list is not None else []

    # ------------------------------------------------------------------
    # batched strip runs
    # ------------------------------------------------------------------

    def process_run(
        self,
        stop0: int,
        strips: "list[tuple[int, int]]",
        diff_rows: "list[int]",
        born_start: int,
    ) -> None:
        """Replay a run of deferred stops as one batch (docs/ENGINES.md).

        The host's preconditions make every strip in the run independent
        and side-effect-free: no strip binds vertically to the one above
        it (so every conducting span and channel is *fresh*), the poly
        view is constant across the run, the contact/buried/implant
        tables are empty, and no label or boundary capture lands inside
        it.  Each diffusion row's ``born``/``died`` stop stamps say
        exactly which strips it participates in, so the whole run's
        spans expand with one ``repeat``; channels come from one overlap
        pass against the static poly arrays, and conducting diffusion
        from one hole subtraction in strip-offset x space.  Fresh ids
        batch-allocate via ``extend`` in (strip, x) order -- the exact
        ids the stop-by-stop sweep would hand out -- and the attribute
        chunks land in the same order-independent accumulators, so the
        wirelist is byte-identical to immediate processing.
        """
        h = self.host
        t = h._tables[h._diff]
        n_strips = len(strips)
        n_rows = t.rows()
        n_prior = len(diff_rows)
        n_cand = n_prior + (n_rows - born_start)
        if n_cand == 0:
            self._pv_dx1 = self._pv_dx2 = self._pv_dnet = _EMPTY
            self._pv_cx1 = self._pv_cx2 = self._pv_cdev = _EMPTY
            return
        cand = np.empty(n_cand, dtype=np.int64)
        cand[:n_prior] = diff_rows
        cand[n_prior:] = np.arange(born_start, n_rows, dtype=np.int64)
        # Transient frombuffer views; the fancy index copies out the
        # candidate rows so the buffers are released immediately.
        born = np.frombuffer(t.born, dtype=np.int64)[cand]
        died = np.frombuffer(t.died, dtype=np.int64)[cand]
        r_x1 = np.frombuffer(t.x1, dtype=np.int64)[cand]
        r_x2 = np.frombuffer(t.x2, dtype=np.int64)[cand]
        # Rows born at the flushing stop (a defer-fail flush runs after
        # that stop's inserts) land past the run; the clip drops them.
        lo_s = np.maximum(born - stop0, 0)
        hi_s = np.minimum(died - stop0, n_strips)
        counts = np.maximum(hi_s - lo_s, 0)
        total = int(counts.sum())
        if total == 0:
            self._pv_dx1 = self._pv_dx2 = self._pv_dnet = _EMPTY
            self._pv_cx1 = self._pv_cx2 = self._pv_cdev = _EMPTY
            return
        d_strip = _flat_targets(lo_s, counts, total)
        d_x1 = np.repeat(r_x1, counts)
        d_x2 = np.repeat(r_x2, counts)
        order = np.lexsort((d_x1, d_strip))
        d_strip = d_strip[order]
        d_x1 = d_x1[order]
        d_x2 = d_x2[order]

        y_hi_arr = np.fromiter((s[1] for s in strips), np.int64, n_strips)
        heights = y_hi_arr - np.fromiter(
            (s[0] for s in strips), np.int64, n_strips
        )

        # Strip-offset x space: shifting each strip's spans by
        # strip * stride keeps them sorted and disjoint across strips,
        # so one subtraction / exact-endpoint search covers the run.
        stride = int(d_x2.max()) - int(d_x1.min()) + 2
        d_off = d_strip * stride
        d_x1o = d_x1 + d_off
        d_x2o = d_x2 + d_off

        # Channels against the static poly view, per strip.
        px1, px2, pnet = self._layer(h._poly)
        ch_x1 = ch_x2 = ch_net = ch_strip = _EMPTY
        if px1.shape[0]:
            lo, hi = _overlap_windows(d_x1, d_x2, px1, px2)
            d_src, p_tgt = _pair_enum(lo, hi)
            if d_src.shape[0]:
                ch_x1 = np.maximum(d_x1[d_src], px1[p_tgt])
                ch_x2 = np.minimum(d_x2[d_src], px2[p_tgt])
                ch_net = pnet[p_tgt]
                ch_strip = d_strip[d_src]

        # Conducting diffusion: diffusion minus channels, in offset space.
        if ch_x1.shape[0]:
            ch_x1o = ch_x1 + ch_strip * stride
            ch_x2o = ch_x2 + ch_strip * stride
            cond_x1o, cond_x2o, seg = _subtract_spans(
                d_x1o, d_x2o, ch_x1o, ch_x2o
            )
            cond_strip = d_strip[seg]
            cond_off = cond_strip * stride
            cond_x1 = cond_x1o - cond_off
            cond_x2 = cond_x2o - cond_off
        else:
            ch_x1o = ch_x2o = _EMPTY
            cond_x1, cond_x2, cond_strip = d_x1, d_x2, d_strip
            cond_x1o, cond_x2o = d_x1o, d_x2o

        n_cond = cond_x1.shape[0]
        n_ch = ch_x1.shape[0]

        # All spans are fresh: batch-allocate ids in (strip, x) order.
        if n_cond:
            base = h._nets.extend(n_cond)
            h.stats.nets_created += n_cond
            cond_net = np.arange(base, base + n_cond, dtype=np.int64)
            touched = self._touched
            n_nets = len(h._nets)
            if touched.shape[0] < n_nets:
                grown = np.zeros(
                    max(n_nets, touched.shape[0] * 2), dtype=bool
                )
                grown[: touched.shape[0]] = touched
                self._touched = touched = grown
            touched[cond_net] = True
            self._tn_chunks.append(
                (cond_net, y_hi_arr[cond_strip], -cond_x1)
            )
        else:
            cond_net = _EMPTY
        if n_ch:
            base = h._devs.extend(n_ch)
            h.stats.devices_created += n_ch
            ch_dev = np.arange(base, base + n_ch, dtype=np.int64)
            ch_h = heights[ch_strip]
            self._area_chunks.append((ch_dev, (ch_x2 - ch_x1) * ch_h))
            self._gate_chunks.append((ch_dev, ch_net))
            self._loc_chunks.append(
                (ch_dev, y_hi_arr[ch_strip], -ch_x1)
            )
        else:
            ch_dev = _EMPTY
            ch_h = _EMPTY

        # Horizontal terminals: channels and conducting spans partition
        # each strip's diffusion, so abutting pairs share an endpoint
        # exactly; offsets never collide across strips, making the two
        # exact-match searches of the strip case valid run-wide.  The
        # vertical terminal sweeps vanish: every strip with channels has
        # an empty strip above it (the host's independence rule).
        if n_ch and n_cond:
            last = n_cond - 1
            pos = np.minimum(np.searchsorted(cond_x2o, ch_x1o), last)
            m = cond_x2o[pos] == ch_x1o
            if m.any():
                self._term_chunks.append(
                    (ch_dev[m], cond_net[pos[m]], ch_h[m])
                )
            pos = np.minimum(np.searchsorted(cond_x1o, ch_x2o), last)
            m = cond_x1o[pos] == ch_x2o
            if m.any():
                self._term_chunks.append(
                    (ch_dev[m], cond_net[pos[m]], ch_h[m])
                )

        # Previous-strip state after the run is the last strip's tail.
        k = int(np.searchsorted(cond_strip, n_strips - 1))
        self._pv_dx1 = cond_x1[k:]
        self._pv_dx2 = cond_x2[k:]
        self._pv_dnet = cond_net[k:] if n_cond else _EMPTY
        k = int(np.searchsorted(ch_strip, n_strips - 1))
        self._pv_cx1 = ch_x1[k:]
        self._pv_cx2 = ch_x2[k:]
        self._pv_cdev = ch_dev[k:] if n_ch else _EMPTY

    # ------------------------------------------------------------------
    # net / device binding
    # ------------------------------------------------------------------

    def _bind(
        self,
        x1: "np.ndarray",
        x2: "np.ndarray",
        pv_x1: "np.ndarray",
        pv_x2: "np.ndarray",
        pv_id: "np.ndarray",
        uf,
        counter: str,
    ) -> "np.ndarray":
        """Assign each span the id inherited from strip-above overlaps.

        Fresh spans (no overlap) batch-allocate via ``extend`` -- the
        ids equal what interleaved ``make`` calls would return, because
        unions never involve same-strip fresh singletons.  Multi-overlap
        spans replay their union chains in ascending span order.
        """
        n = x1.shape[0]
        if n == 0:
            return _EMPTY
        h = self.host
        if pv_x1.shape[0] == 0:
            base = uf.extend(n)
            setattr(h.stats, counter, getattr(h.stats, counter) + n)
            return np.arange(base, base + n, dtype=np.int64)
        lo, hi = _overlap_windows(x1, x2, pv_x1, pv_x2)
        fresh = hi <= lo
        out = np.empty(n, dtype=np.int64)
        n_fresh = int(fresh.sum())
        if n_fresh:
            base = uf.extend(n_fresh)
            setattr(h.stats, counter, getattr(h.stats, counter) + n_fresh)
            out[fresh] = base - 1 + np.cumsum(fresh, dtype=np.int64)[fresh]
        if n_fresh < n:
            bound = np.nonzero(~fresh)[0]
            lo_l = lo[bound].tolist()
            hi_l = hi[bound].tolist()
            pv = pv_id.tolist()
            union = uf.union
            values = []
            for a, b in zip(lo_l, hi_l):
                ident = pv[a]
                for j in range(a + 1, b):
                    ident = union(ident, pv[j])
                values.append(ident)
            out[bound] = values
        return out

    def _bind_nets_replay(
        self,
        cond_x1: "np.ndarray",
        cond_x2: "np.ndarray",
        y_lo: int,
        y_hi: int,
    ) -> "tuple[np.ndarray, list[tuple[int, int, int]]]":
        """keep_geometry path: the reference engine's cond loop verbatim,
        so ``_net_geo`` keys and append order stay identical."""
        h = self.host
        nets = h._nets
        prev = self._pv_d_list
        n_prev = len(prev)
        cond: list[tuple[int, int, int]] = []
        pj = 0
        for x1, x2 in zip(cond_x1.tolist(), cond_x2.tolist()):
            while pj < n_prev and prev[pj][1] <= x1:
                pj += 1
            net = None
            k = pj
            while k < n_prev:
                entry = prev[k]
                if entry[0] >= x2:
                    break
                net = entry[2] if net is None else nets.union(net, entry[2])
                k += 1
            if net is None:
                net = nets.make()
                h.stats.nets_created += 1
            self._tn_scalar.append((net, y_hi, -x1))
            h._net_geo.setdefault(net, []).append(
                (h._diff, Box(x1, y_lo, x2, y_hi))
            )
            cond.append((x1, x2, net))
        if cond:
            net_arr = np.fromiter(
                (entry[2] for entry in cond), np.int64, len(cond)
            )
        else:
            net_arr = _EMPTY
        return net_arr, cond

    def _bind_devs_replay(
        self,
        ch_x1: "np.ndarray",
        ch_x2: "np.ndarray",
        y_lo: int,
        y_hi: int,
    ) -> "tuple[np.ndarray, list[tuple[int, int, int]]]":
        """keep_geometry path: device binding with find-at-append-time
        geometry grouping, matching the reference engine's record keys."""
        h = self.host
        devs = h._devs
        prev = self._pv_c_list
        n_prev = len(prev)
        out: list[tuple[int, int, int]] = []
        cj = 0
        for x1, x2 in zip(ch_x1.tolist(), ch_x2.tolist()):
            while cj < n_prev and prev[cj][1] <= x1:
                cj += 1
            dev = None
            k = cj
            while k < n_prev:
                entry = prev[k]
                if entry[0] >= x2:
                    break
                dev = entry[2] if dev is None else devs.union(dev, entry[2])
                k += 1
            if dev is None:
                dev = devs.make()
                h.stats.devices_created += 1
            self._dev_geo.setdefault(devs.find(dev), []).append(
                Box(x1, y_lo, x2, y_hi)
            )
            out.append((x1, x2, dev))
        if out:
            dev_arr = np.fromiter(
                (entry[2] for entry in out), np.int64, len(out)
            )
        else:
            dev_arr = _EMPTY
        return dev_arr, out

    # ------------------------------------------------------------------
    # contact cuts
    # ------------------------------------------------------------------

    def _contact_unions(
        self,
        cond_x1: "np.ndarray",
        cond_x2: "np.ndarray",
        cond_net: "np.ndarray",
    ) -> None:
        h = self.host
        cx1, cx2, _ = self._layer(h._contact)
        n_cuts = cx1.shape[0]
        entries = []
        mx1, mx2, mnet = self._layer(h._metal)
        px1, px2, pnet = self._layer(h._poly)
        for lx1, lx2, lnet in (
            (mx1, mx2, mnet),
            (px1, px2, pnet),
            (cond_x1, cond_x2, cond_net),
        ):
            if lx1.shape[0] == 0:
                continue
            lo, hi = _overlap_windows(cx1, cx2, lx1, lx2)
            counts = hi - lo
            total = int(counts.sum())
            if not total:
                continue
            cut_idx = np.repeat(np.arange(n_cuts), counts)
            tgt = _flat_targets(lo, counts, total)
            entries.append(
                (
                    cut_idx,
                    np.maximum(lx1[tgt], cx1[cut_idx]),
                    np.minimum(lx2[tgt], cx2[cut_idx]),
                    lnet[tgt],
                )
            )
        if not entries:
            return
        cut_i = np.concatenate([e[0] for e in entries])
        a1 = np.concatenate([e[1] for e in entries])
        a2 = np.concatenate([e[2] for e in entries])
        an = np.concatenate([e[3] for e in entries])
        # Per cut, the reference engine sorts its present-entry tuples
        # (x1, x2, net) and unions pairs until x-overlap stops; the
        # lexsort reproduces that sort, the loop replays the cascade.
        order = np.lexsort((an, a2, a1, cut_i))
        ci = cut_i[order].tolist()
        s1 = a1[order].tolist()
        s2 = a2[order].tolist()
        sn = an[order].tolist()
        union = h._nets.union
        m = len(ci)
        i = 0
        while i < m:
            cut = ci[i]
            j = i + 1
            while j < m and ci[j] == cut:
                j += 1
            for a in range(i, j):
                end = s2[a]
                for b in range(a + 1, j):
                    if s1[b] >= end:
                        break
                    union(sn[a], sn[b])
            i = j

    # ------------------------------------------------------------------
    # net location accumulation
    # ------------------------------------------------------------------

    def touch_net(self, net: int, xmin: int, ymax: int) -> None:
        self._tn_scalar.append((net, ymax, -xmin))

    # ------------------------------------------------------------------
    # finalize folds (step 3)
    # ------------------------------------------------------------------

    def net_order(self) -> "tuple[list[int], list[tuple[int, int]]]":
        h = self.host
        n_nets = len(h._nets)
        parent = np.array(h._nets.parent_snapshot(), dtype=np.int64)
        if parent.shape[0]:
            parent = _resolve_parents(parent)
        self._net_parent = parent

        chunks = list(self._tn_chunks)
        if self._tn_scalar:
            scalar = np.array(self._tn_scalar, dtype=np.int64)
            chunks.append((scalar[:, 0], scalar[:, 1], scalar[:, 2]))
        if not chunks or n_nets == 0:
            return [], []
        ids = np.concatenate([c[0] for c in chunks])
        ys = np.concatenate([c[1] for c in chunks])
        nxs = np.concatenate([c[2] for c in chunks])
        roots = parent[ids]
        # Group-max location per root: sort by (root, y, -x) and keep
        # each group's last row -- the python engine's tuple-max.  On a
        # union-free sweep the touched-filter leaves exactly one row per
        # root: the engine-chunk prefix and the host-scalar tail are each
        # strictly increasing and disjoint, every root appears once, and
        # grouping is the identity (the canonical sort below does not
        # care about pre-order, so no merge is needed either).
        n_c = roots.shape[0] - len(self._tn_scalar)
        roots_c, roots_s = roots[:n_c], roots[n_c:]
        if (
            bool(np.all(roots_c[1:] > roots_c[:-1]))
            and bool(np.all(roots_s[1:] > roots_s[:-1]))
            and (
                roots_s.shape[0] == 0
                or roots_c.shape[0] == 0
                or not bool(
                    (
                        roots_c[
                            np.minimum(
                                np.searchsorted(roots_c, roots_s),
                                roots_c.shape[0] - 1,
                            )
                        ]
                        == roots_s
                    ).any()
                )
            )
        ):
            g_root, g_y, g_nx = roots, ys, nxs
        else:
            order = _sort3(roots, ys, nxs)
            r_s, y_s, nx_s = roots[order], ys[order], nxs[order]
            last = np.append(np.nonzero(np.diff(r_s))[0], r_s.shape[0] - 1)
            g_root, g_y, g_nx = r_s[last], y_s[last], nx_s[last]
        # Canonical net order: key (-ymax, -(-xmin), root) ascending.
        out = _sort3(-g_y, -g_nx, g_root)
        self._order_roots = g_root[out]
        roots_list = self._order_roots.tolist()
        locations = list(
            zip(np.negative(g_nx[out]).tolist(), g_y[out].tolist())
        )
        return roots_list, locations

    def build_devices(
        self,
        index_of: "dict[int, int]",
        kind_enh: str,
        kind_dep: str,
        boundary_dev_roots: "set[int]",
    ) -> "tuple[list[Device], dict[int, int], list[str]]":
        h = self.host
        n_dev = len(h._devs)
        if n_dev == 0:
            return [], {}, []
        dparent = _resolve_parents(
            np.array(h._devs.parent_snapshot(), dtype=np.int64)
        )
        nparent = self._net_parent
        assert nparent is not None, "net_order must run before device_rows"

        # location fold -> canonical device order
        l_ids = np.concatenate([c[0] for c in self._loc_chunks])
        l_y = np.concatenate([c[1] for c in self._loc_chunks])
        l_nx = np.concatenate([c[2] for c in self._loc_chunks])
        l_root = dparent[l_ids]
        # Same strictly-increasing shortcut as the net fold: channel ids
        # allocate in strip order, so a union-free sweep needs no sort.
        if bool(np.all(l_root[1:] > l_root[:-1])):
            g_root, g_y, g_nx = l_root, l_y, l_nx
        else:
            order = _sort3(l_root, l_y, l_nx)
            r_s, y_s, nx_s = l_root[order], l_y[order], l_nx[order]
            last = np.append(np.nonzero(np.diff(r_s))[0], r_s.shape[0] - 1)
            g_root, g_y, g_nx = r_s[last], y_s[last], nx_s[last]
        out = _sort3(-g_y, -g_nx, g_root)
        order_roots = g_root[out]
        loc_y = g_y[out]
        loc_nx = g_nx[out]

        # area / implant folds (raw ids -> final roots).  bincount sums
        # in float64, which is exact for these magnitudes (areas are far
        # below 2**53), so the int64 round-trip loses nothing.
        a_ids = np.concatenate([c[0] for c in self._area_chunks])
        a_vals = np.concatenate([c[1] for c in self._area_chunks])
        areas = np.bincount(
            dparent[a_ids], weights=a_vals, minlength=n_dev
        ).astype(np.int64)
        impl = np.zeros(n_dev, dtype=bool)
        for ids in self._impl_chunks:
            impl[dparent[ids]] = True

        # net root -> 1-based wirelist index, as an array.  The host
        # builds index_of by enumerating net_order's roots 1-based, so
        # when the stashed order array matches we scatter an arange
        # instead of round-tripping the dict through fromiter.
        n_nets = nparent.shape[0]
        net_index = np.zeros(max(n_nets, 1), dtype=np.int64)
        order_roots_net = self._order_roots
        n_order = (
            order_roots_net.shape[0] if index_of is None else len(index_of)
        )
        if order_roots_net is not None and (
            index_of is None or order_roots_net.shape[0] == len(index_of)
        ):
            net_index[order_roots_net] = np.arange(
                1, n_order + 1, dtype=np.int64
            )
        elif index_of:
            keys = np.fromiter(index_of.keys(), np.int64, len(index_of))
            vals = np.fromiter(index_of.values(), np.int64, len(index_of))
            net_index[keys] = vals
        mult = n_order + 2

        # gates: unique (device root, gate net index) pairs, ascending --
        # identical to the python engine's sorted gate-index list.
        if self._gate_chunks:
            gd = dparent[np.concatenate([c[0] for c in self._gate_chunks])]
            gn = net_index[
                nparent[np.concatenate([c[1] for c in self._gate_chunks])]
            ]
            known = gn > 0
            g_all = gd[known] * mult + gn[known]
            if g_all.shape[0] > 1 and bool(np.all(g_all[1:] > g_all[:-1])):
                # already strictly increasing: sorted and duplicate-free
                g_keys = g_all
            elif g_all.shape[0]:
                g_all.sort()
                keep = np.empty(g_all.shape[0], dtype=bool)
                keep[0] = True
                np.not_equal(g_all[1:], g_all[:-1], out=keep[1:])
                g_keys = g_all[keep]
            else:
                g_keys = g_all
            g_dev = g_keys // mult
            g_idx = g_keys % mult
        else:
            g_dev = g_idx = _EMPTY

        # terminals: perimeter sums grouped by (device root, net index)
        if self._term_chunks:
            td = dparent[np.concatenate([c[0] for c in self._term_chunks])]
            tn = net_index[
                nparent[np.concatenate([c[1] for c in self._term_chunks])]
            ]
            tl = np.concatenate([c[2] for c in self._term_chunks])
            known = tn > 0
            td, tn, tl = td[known], tn[known], tl[known]
        else:
            td = tn = tl = _EMPTY
        if td.shape[0]:
            t_keys = td * mult + tn
            t_order = np.argsort(t_keys, kind="stable")
            k_s = t_keys[t_order]
            l_s = tl[t_order]
            starts = np.concatenate(
                ([0], np.nonzero(np.diff(k_s))[0] + 1)
            )
            t_sum = np.add.reduceat(l_s, starts)
            t_dev = k_s[starts] // mult
            t_idx = k_s[starts] % mult
        else:
            t_dev = t_idx = t_sum = _EMPTY

        # Per-device slices into the grouped gate/terminal arrays.  Both
        # grouped arrays are sorted by device root, so one bincount plus
        # an exclusive prefix sum gives every root's slice in a single
        # linear pass instead of four binary-search sweeps.
        if t_dev.shape[0]:
            t_cnt = np.bincount(t_dev, minlength=n_dev)
            t_off = np.cumsum(t_cnt) - t_cnt
            t_lo = t_off[order_roots]
            t_hi = t_lo + t_cnt[order_roots]
        else:
            t_lo = t_hi = np.zeros(order_roots.shape[0], dtype=np.int64)
        if g_dev.shape[0]:
            g_cnt_all = np.bincount(g_dev, minlength=n_dev)
            g_off = np.cumsum(g_cnt_all) - g_cnt_all
            g_lo = g_off[order_roots]
            g_hi = g_lo + g_cnt_all[order_roots]
        else:
            g_lo = g_hi = np.zeros(order_roots.shape[0], dtype=np.int64)

        # vectorized two-terminal sizing (the overwhelming common case);
        # other terminal counts fall back to size_device per row.
        n_out = order_roots.shape[0]
        area_out = areas[order_roots]
        t_count = t_hi - t_lo
        if t_idx.shape[0]:
            guard = t_idx.shape[0] - 1
            i0 = np.minimum(t_lo, guard)
            i1 = np.minimum(t_lo + 1, guard)
            n1, p1 = t_idx[i0], t_sum[i0]
            n2, p2 = t_idx[i1], t_sum[i1]
            swap = p1 < p2  # grouped ascending by net index: n1 < n2
            src2 = np.where(swap, n2, n1)
            drn2 = np.where(swap, n1, n2)
            width2 = (p1 + p2) / 2.0
            length2 = np.divide(
                area_out,
                width2,
                out=np.zeros(n_out, dtype=np.float64),
                where=width2 > 0,
            )
        else:
            src2 = drn2 = np.zeros(n_out, dtype=np.int64)
            width2 = length2 = np.zeros(n_out, dtype=np.float64)

        # geometry fold (keep_geometry replay): concatenate per raw key
        # ascending, the reference engine's record-table fold order.
        geo_fold: dict[int, list[Box]] = {}
        if self._dev_geo:
            dev_find = h._devs.find
            for key in sorted(self._dev_geo):
                geo_fold.setdefault(dev_find(key), []).extend(
                    self._dev_geo[key]
                )

        area_l = area_out.tolist()
        impl_out = impl[order_roots]
        locs = list(
            zip(np.negative(loc_nx).tolist(), loc_y.tolist())
        )
        g_cnt = g_hi - g_lo

        if geo_fold or boundary_dev_roots:
            return self._build_devices_rowwise(
                kind_enh, kind_dep, boundary_dev_roots, geo_fold,
                order_roots.tolist(), area_l, impl_out, locs,
                t_lo, t_hi, t_idx, t_sum,
                g_lo, g_hi, g_idx,
                src2, drn2, width2, length2,
            )

        # Bulk materialization: every per-device python object (the
        # Device itself, its terminals dict, gates list, location
        # tuple) is built by C-level map/zip passes; the rare rows that
        # do not fit the one-gate/two-terminal template are patched
        # afterwards.  One python iteration per device costs more than
        # the whole array pipeline at mesh scale.
        kinds = [kind_enh] * n_out
        impl_idx = (
            np.nonzero(impl_out)[0].tolist() if impl_out.any() else []
        )
        for i in impl_idx:
            kinds[i] = kind_dep
        if g_idx.shape[0]:
            g_first = g_idx[np.minimum(g_lo, g_idx.shape[0] - 1)]
            gate_l = g_first.tolist()
            gates_l = g_first.reshape(-1, 1).tolist()
        else:
            gate_l = [None] * n_out
            gates_l = list(map(list, repeat((), n_out)))
        if t_idx.shape[0]:
            # dict displays over four flat lists beat building and
            # re-walking an (n_out, 2, 2) nested tolist block
            terms_l = [
                {a: b, c: d}
                for a, b, c, d in zip(
                    n1.tolist(), p1.tolist(), n2.tolist(), p2.tolist()
                )
            ]
        else:
            terms_l = list(map(dict, repeat((), n_out)))
        devices = list(
            map(
                Device,
                range(n_out),
                kinds,
                gate_l,
                src2.tolist(),
                drn2.tolist(),
                length2.tolist(),
                width2.tolist(),
                area_l,
                locs,
                terms_l,
                gates_l,
            )
        )
        # geometry/touches_boundary take their dataclass defaults (the
        # bulk path never runs with kept geometry or a window); only the
        # rare depletion rows need patching.
        for i in impl_idx:
            devices[i].depletion = True

        # patch rows outside the two-terminal template
        for i in np.nonzero(t_count != 2)[0].tolist():
            lo, hi = int(t_lo[i]), int(t_hi[i])
            terms = dict(
                zip(t_idx[lo:hi].tolist(), t_sum[lo:hi].tolist())
            )
            sized = size_device(area_l[i], terms)
            d = devices[i]
            d.terminals = terms
            d.source, d.drain = sized.source, sized.drain
            d.length, d.width = sized.length, sized.width
        # patch rows outside the single-gate template
        for i in np.nonzero(g_cnt != 1)[0].tolist():
            lst = g_idx[int(g_lo[i]):int(g_hi[i])].tolist()
            d = devices[i]
            d.gates = lst
            d.gate = lst[0] if lst else None

        warnings: list[str] = []
        warn_mask = (g_cnt != 1) | (t_count < 2)
        if warn_mask.any():
            for i in np.nonzero(warn_mask)[0].tolist():
                d = devices[i]
                warnings.append(
                    f"malformed transistor at {d.location}: "
                    f"{len(d.gates)} gate nets, "
                    f"{len(d.terminals)} terminals"
                )
        # The root -> index map only feeds window boundary records;
        # whole-chip extraction never reads it.
        dev_index_of = (
            dict(zip(order_roots.tolist(), range(n_out)))
            if h.window is not None
            else {}
        )
        return devices, dev_index_of, warnings

    def _build_devices_rowwise(
        self,
        kind_enh: str,
        kind_dep: str,
        boundary_dev_roots: "set[int]",
        geo_fold: "dict[int, list[Box]]",
        roots_l: "list[int]",
        area_l: "list[int]",
        impl_out,
        locs: "list[tuple[int, int]]",
        t_lo, t_hi, t_idx, t_sum,
        g_lo, g_hi, g_idx,
        src2, drn2, width2, length2,
    ) -> "tuple[list[Device], dict[int, int], list[str]]":
        """Per-row construction for runs that keep geometry or carry a
        window boundary -- small layouts where clarity beats batching.
        """
        devices: list[Device] = []
        dev_index_of: dict[int, int] = {}
        warnings: list[str] = []
        t_idx_l, t_sum_l = t_idx.tolist(), t_sum.tolist()
        g_idx_l = g_idx.tolist()
        get_geo = geo_fold.get
        for (
            i,
            (root, area, is_impl, loc, lo_t, hi_t, lo_g, hi_g,
             source, drain, width, length),
        ) in enumerate(
            zip(
                roots_l,
                area_l,
                impl_out.tolist(),
                locs,
                t_lo.tolist(),
                t_hi.tolist(),
                g_lo.tolist(),
                g_hi.tolist(),
                src2.tolist(),
                drn2.tolist(),
                width2.tolist(),
                length2.tolist(),
            )
        ):
            if hi_t - lo_t == 2:
                terms = {
                    t_idx_l[lo_t]: t_sum_l[lo_t],
                    t_idx_l[lo_t + 1]: t_sum_l[lo_t + 1],
                }
            else:
                terms = dict(zip(t_idx_l[lo_t:hi_t], t_sum_l[lo_t:hi_t]))
                sized = size_device(area, terms)
                source, drain = sized.source, sized.drain
                width, length = sized.width, sized.length
            gate_indices = g_idx_l[lo_g:hi_g]
            on_boundary = root in boundary_dev_roots
            device = Device(
                i,
                kind_dep if is_impl else kind_enh,
                gate_indices[0] if gate_indices else None,
                source,
                drain,
                length,
                width,
                area,
                loc,
                terms,
                gate_indices,
                get_geo(root) or [] if geo_fold else [],
                on_boundary,
                is_impl,
            )
            devices.append(device)
            dev_index_of[root] = i
            if not on_boundary and (
                source is None
                or drain is None
                or len(gate_indices) != 1
            ):
                warnings.append(
                    f"malformed transistor at {device.location}: "
                    f"{len(gate_indices)} gate nets, {len(terms)} terminals"
                )
        return devices, dev_index_of, warnings

    # ------------------------------------------------------------------
    # banded streaming hooks (docs/STREAMING.md)
    # ------------------------------------------------------------------

    def live_roots(self) -> "tuple[set[int], set[int]]":
        h = self.host
        find = h._nets.find
        dev_find = h._devs.find
        return (
            {find(n) for n in self._pv_dnet.tolist()},
            {dev_find(d) for d in self._pv_cdev.tolist()},
        )

    def retire(
        self, live_nets: "set[int]", live_devs: "set[int]"
    ) -> "tuple[dict[int, tuple[int, int]], dict[int, dict]]":
        h = self.host
        n_nets = len(h._nets)
        n_devs = len(h._devs)
        nparent = (
            _resolve_parents(
                np.array(h._nets.parent_snapshot(), dtype=np.int64)
            )
            if n_nets
            else _EMPTY
        )
        dparent = (
            _resolve_parents(
                np.array(h._devs.parent_snapshot(), dtype=np.int64)
            )
            if n_devs
            else _EMPTY
        )
        net_live = np.zeros(max(n_nets, 1), dtype=bool)
        if live_nets:
            net_live[
                np.fromiter(live_nets, np.int64, len(live_nets))
            ] = True
        dev_live = np.zeros(max(n_devs, 1), dtype=bool)
        if live_devs:
            dev_live[
                np.fromiter(live_devs, np.int64, len(live_devs))
            ] = True

        # Net locations: resolve and group-max every accumulated touch
        # row by root (deferred folds are order-independent maxima), then
        # split by liveness.  Live rows collapse to one row per root --
        # valid because max-of-max is the same max -- which is what keeps
        # the accumulators O(live) between bands.
        dead_locs: dict[int, tuple[int, int]] = {}
        chunks = list(self._tn_chunks)
        if self._tn_scalar:
            scalar = np.array(self._tn_scalar, dtype=np.int64)
            chunks.append((scalar[:, 0], scalar[:, 1], scalar[:, 2]))
        self._tn_scalar = []
        self._tn_chunks = []
        if chunks:
            ids = np.concatenate([c[0] for c in chunks])
            ys = np.concatenate([c[1] for c in chunks])
            nxs = np.concatenate([c[2] for c in chunks])
            roots = nparent[ids]
            order = _sort3(roots, ys, nxs)
            r_s, y_s, nx_s = roots[order], ys[order], nxs[order]
            last = np.append(
                np.nonzero(np.diff(r_s))[0], r_s.shape[0] - 1
            )
            g_root, g_y, g_nx = r_s[last], y_s[last], nx_s[last]
            alive = net_live[g_root]
            dead = ~alive
            for r, y, nx in zip(
                g_root[dead].tolist(),
                g_y[dead].tolist(),
                g_nx[dead].tolist(),
            ):
                dead_locs[r] = (y, nx)
            if alive.any():
                self._tn_chunks = [
                    (g_root[alive], g_y[alive], g_nx[alive])
                ]

        # Device attribute columns: rows of dead roots fold into
        # reference-format records; rows of live roots stay raw (their
        # final-root resolution is unaffected by when it happens).
        recs: dict[int, dict] = {}

        def rec_for(root: int) -> dict:
            rec = recs.get(root)
            if rec is None:
                rec = recs[root] = {
                    "area": 0,
                    "gates": set(),
                    "terms": {},
                    "geo": [],
                    "loc": None,
                    "impl": False,
                }
            return rec

        if self._area_chunks:
            ids = np.concatenate([c[0] for c in self._area_chunks])
            vals = np.concatenate([c[1] for c in self._area_chunks])
            roots = dparent[ids]
            alive = dev_live[roots]
            dead = ~alive
            for d, v in zip(roots[dead].tolist(), vals[dead].tolist()):
                rec_for(d)["area"] += v
            self._area_chunks = (
                [(ids[alive], vals[alive])] if alive.any() else []
            )
        if self._gate_chunks:
            ids = np.concatenate([c[0] for c in self._gate_chunks])
            gnets = np.concatenate([c[1] for c in self._gate_chunks])
            roots = dparent[ids]
            alive = dev_live[roots]
            dead = ~alive
            for d, g in zip(
                roots[dead].tolist(), nparent[gnets[dead]].tolist()
            ):
                rec_for(d)["gates"].add(g)
            self._gate_chunks = (
                [(ids[alive], gnets[alive])] if alive.any() else []
            )
        if self._loc_chunks:
            ids = np.concatenate([c[0] for c in self._loc_chunks])
            ys = np.concatenate([c[1] for c in self._loc_chunks])
            nxs = np.concatenate([c[2] for c in self._loc_chunks])
            roots = dparent[ids]
            alive = dev_live[roots]
            dead = ~alive
            for d, y, nx in zip(
                roots[dead].tolist(),
                ys[dead].tolist(),
                nxs[dead].tolist(),
            ):
                rec = rec_for(d)
                loc = (y, nx)
                if rec["loc"] is None or loc > rec["loc"]:
                    rec["loc"] = loc
            self._loc_chunks = (
                [(ids[alive], ys[alive], nxs[alive])]
                if alive.any()
                else []
            )
        if self._impl_chunks:
            ids = np.concatenate(self._impl_chunks)
            roots = dparent[ids]
            alive = dev_live[roots]
            dead = ~alive
            for d in roots[dead].tolist():
                rec_for(d)["impl"] = True
            self._impl_chunks = [ids[alive]] if alive.any() else []
        if self._term_chunks:
            ids = np.concatenate([c[0] for c in self._term_chunks])
            tnets = np.concatenate([c[1] for c in self._term_chunks])
            lens = np.concatenate([c[2] for c in self._term_chunks])
            roots = dparent[ids]
            alive = dev_live[roots]
            dead = ~alive
            for d, n, ln in zip(
                roots[dead].tolist(),
                nparent[tnets[dead]].tolist(),
                lens[dead].tolist(),
            ):
                terms = rec_for(d)["terms"]
                terms[n] = terms.get(n, 0) + ln
            self._term_chunks = (
                [(ids[alive], tnets[alive], lens[alive])]
                if alive.any()
                else []
            )
        if self._dev_geo:
            dev_find = h._devs.find
            keep_geo: dict[int, list[Box]] = {}
            # Ascending raw-key order is the finalize fold order; dead
            # roots gain no future keys, so the restriction is exact.
            for key in sorted(self._dev_geo):
                root = dev_find(key)
                if dev_live[root]:
                    keep_geo[key] = self._dev_geo[key]
                else:
                    rec_for(root)["geo"].extend(self._dev_geo[key])
            self._dev_geo = keep_geo
        return dead_locs, recs

    def snapshot_state(self) -> dict:
        def rows(*cols) -> list[list[int]]:
            return np.column_stack(cols).tolist() if cols[0].shape[0] else []

        def chunk_rows(chunks) -> list[list[int]]:
            return [
                row
                for chunk in chunks
                for row in np.column_stack(chunk).tolist()
            ]

        return {
            "pv_diff": rows(self._pv_dx1, self._pv_dx2, self._pv_dnet),
            "pv_channels": rows(self._pv_cx1, self._pv_cx2, self._pv_cdev),
            "pv_d_list": [list(e) for e in self._pv_d_list],
            "pv_c_list": [list(e) for e in self._pv_c_list],
            "tn_scalar": [list(e) for e in self._tn_scalar],
            "tn_chunks": chunk_rows(self._tn_chunks),
            "touched": np.nonzero(self._touched)[0].tolist(),
            "touched_size": int(self._touched.shape[0]),
            "area": chunk_rows(self._area_chunks),
            "gates": chunk_rows(self._gate_chunks),
            "loc": chunk_rows(self._loc_chunks),
            "impl": [
                v
                for chunk in self._impl_chunks
                for v in chunk.tolist()
            ],
            "terms": chunk_rows(self._term_chunks),
            "dev_geo": [
                [key, [[b.xmin, b.ymin, b.xmax, b.ymax] for b in boxes]]
                for key, boxes in self._dev_geo.items()
            ],
        }

    def restore_state(self, state: dict) -> None:
        # The layer view cache is keyed by table version counters, which
        # restart after a restore -- stale entries could alias.
        self._cache.clear()

        def cols(rows, n: int):
            if not rows:
                return tuple(_EMPTY for _ in range(n))
            arr = np.array(rows, dtype=np.int64)
            return tuple(arr[:, i] for i in range(n))

        self._pv_dx1, self._pv_dx2, self._pv_dnet = cols(state["pv_diff"], 3)
        self._pv_cx1, self._pv_cx2, self._pv_cdev = cols(
            state["pv_channels"], 3
        )
        self._pv_d_list = [(a, b, c) for a, b, c in state["pv_d_list"]]
        self._pv_c_list = [(a, b, c) for a, b, c in state["pv_c_list"]]
        self._tn_scalar = [(a, b, c) for a, b, c in state["tn_scalar"]]
        self._tn_chunks = (
            [cols(state["tn_chunks"], 3)] if state["tn_chunks"] else []
        )
        touched = np.zeros(int(state["touched_size"]), dtype=bool)
        if state["touched"]:
            touched[np.array(state["touched"], dtype=np.int64)] = True
        self._touched = touched
        self._area_chunks = (
            [cols(state["area"], 2)] if state["area"] else []
        )
        self._gate_chunks = (
            [cols(state["gates"], 2)] if state["gates"] else []
        )
        self._loc_chunks = [cols(state["loc"], 3)] if state["loc"] else []
        self._impl_chunks = (
            [np.array(state["impl"], dtype=np.int64)]
            if state["impl"]
            else []
        )
        self._term_chunks = (
            [cols(state["terms"], 3)] if state["terms"] else []
        )
        self._dev_geo = {
            int(key): [Box(x1, y1, x2, y2) for x1, y1, x2, y2 in boxes]
            for key, boxes in state["dev_geo"]
        }
