"""Extraction result model: nets, devices, and the circuit they form.

This is the back-end's output *before* wirelist formatting: canonical
integer net indices, device records with computed sizes, and (in window
mode) the boundary records HEXT's compose step consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..geometry import Box

#: Pseudo-layer name used for transistor channels in boundary records and
#: geometry tables.  Not a mask layer; chosen to be impossible as CIF.
CHANNEL = "__channel__"


class Face(str, Enum):
    """Window boundary faces, named from inside the window."""

    LEFT = "L"
    RIGHT = "R"
    TOP = "T"
    BOTTOM = "B"


@dataclass(frozen=True, slots=True)
class BoundaryRecord:
    """One conducting span (or channel span) touching a window face.

    ``lo``/``hi`` are a y-range for LEFT/RIGHT faces and an x-range for
    TOP/BOTTOM faces.  ``ident`` is a net index for conducting layers and
    a device index for :data:`CHANNEL` records.
    """

    face: Face
    layer: str
    lo: int
    hi: int
    ident: int

    @property
    def length(self) -> int:
        return self.hi - self.lo


@dataclass(slots=True)
class Net:
    """An electrically connected region with no intervening transistor."""

    index: int
    names: list[str] = field(default_factory=list)
    location: tuple[int, int] | None = None
    geometry: list[tuple[str, Box]] = field(default_factory=list)

    @property
    def label(self) -> str:
        """Display name: the first user name, else N<index>."""
        return self.names[0] if self.names else f"N{self.index}"


@dataclass(slots=True)
class Device:
    """A transistor (or, when malformed, a transistor-like channel).

    ``width`` is the mean of the source and drain contact-edge lengths and
    ``length`` is channel area / width, exactly as in section 3 of the
    paper.  ``terminals`` maps net index to total contact perimeter, kept
    so HEXT can re-derive sizes after merging partial devices.
    """

    index: int
    kind: str  # "nEnh" or "nDep"
    gate: int | None
    source: int | None
    drain: int | None
    length: float
    width: float
    area: int
    location: tuple[int, int] | None
    terminals: dict[int, int] = field(default_factory=dict)
    gates: list[int] = field(default_factory=list)
    geometry: list[Box] = field(default_factory=list)
    touches_boundary: bool = False
    depletion: bool = False

    @property
    def is_malformed(self) -> bool:
        """True when the device is not a clean 3-terminal transistor."""
        return (
            self.gate is None
            or self.source is None
            or self.drain is None
            or len(self.gates) > 1
        )


@dataclass
class Circuit:
    """A complete extraction result.

    ``boundary`` is empty for whole-chip extraction and carries the window
    interface records in HEXT's window mode.  ``warnings`` collects
    non-fatal extraction oddities (unattached labels, floating devices).
    """

    nets: list[Net]
    devices: list[Device]
    boundary: list[BoundaryRecord] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def net_by_name(self, name: str) -> Net:
        for net in self.nets:
            if name in net.names:
                return net
        raise KeyError(f"no net named {name!r}")

    def device_count(self) -> int:
        return len(self.devices)

    def stats_line(self) -> str:  # pragma: no cover - cosmetic
        return f"{len(self.devices)} devices, {len(self.nets)} nets"
