"""Pluggable per-strip computation back-ends for the scanline engine.

:class:`~repro.core.scanline.ScanlineEngine` owns everything event-driven
-- active lists, bottom-edge heaps, merge/split bookkeeping -- and
delegates the per-strip *value* computation (channels, conducting
diffusion, terminals, contact unions, device records) plus the finalize
folds to a :class:`StripEngine`.  Two implementations exist:

``python``
    The always-available reference engine
    (:class:`repro.core.engine_python.PythonStripEngine`): the paper's
    per-interval sweeps as plain-python loops.

``numpy``
    A vectorized strip-batch engine
    (:class:`repro.core.engine_numpy.NumpyStripEngine`) that
    materializes each strip's active intervals as flat endpoint/net
    arrays and does span overlap, terminal pairing, and the finalize
    folds as batch array passes.  Available when numpy is importable
    (the ``repro[fast]`` extra).

Both engines share the host's union-find and counters and must produce
**byte-identical wirelists** -- docs/ENGINES.md documents the contract
and how it is enforced.  Selection is by name: ``auto`` prefers numpy
when importable and silently falls back to python otherwise; asking for
``numpy`` explicitly without numpy installed raises
:class:`EngineUnavailable` with an actionable message.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..frontend.stream import GeometryStream
    from .scanline import ScanlineEngine

#: Valid values for every ``engine=`` / ``--engine`` knob in the stack.
ENGINE_CHOICES = ("auto", "python", "numpy")

#: (cond, cond_starts) thunk handed to the host's label attachment so an
#: engine only materializes the strip's conducting spans when a label
#: actually lands in the strip.
CondSource = Callable[[], "list[tuple[int, int, int]]"]


class EngineUnavailable(RuntimeError):
    """An explicitly requested strip engine cannot run here."""


def numpy_available() -> bool:
    """True when the numpy back-end can be imported."""
    try:
        import numpy  # noqa: F401
    except Exception:  # pragma: no cover - import failure path
        return False
    return True


def resolve_engine(name: str = "auto") -> str:
    """Map an engine request to a concrete engine name.

    ``auto`` resolves to ``numpy`` when importable, else ``python``.
    An explicit ``numpy`` without numpy installed is an error rather
    than a silent fallback -- the caller asked for speed it cannot get.
    """
    if name not in ENGINE_CHOICES:
        raise ValueError(
            f"unknown strip engine {name!r}; choose one of {ENGINE_CHOICES}"
        )
    if name == "auto":
        return "numpy" if numpy_available() else "python"
    if name == "numpy" and not numpy_available():
        raise EngineUnavailable(
            "the numpy strip engine was requested but numpy is not "
            "installed; install the fast extra (pip install 'repro[fast]') "
            "or use --engine auto to fall back to the pure-python engine"
        )
    return name


class StripEngine:
    """Interface every strip back-end implements.

    One instance lives per :class:`ScanlineEngine` run and carries the
    engine's accumulated per-strip state (previous strip's conducting
    spans and channels, net/device attribute accumulators).  The host
    guarantees ``process_strip`` is called once per strip, top to
    bottom, and that ``net_order`` is called before ``build_devices``.
    """

    #: concrete engine name ("python" / "numpy")
    name = "abstract"

    #: True when the engine implements :meth:`process_run`, letting the
    #: host defer side-effect-free stops and hand them over as one
    #: vectorized strip run (docs/ENGINES.md).
    supports_runs = False

    #: False when the engine derives the net-root -> wirelist-index map
    #: itself (from its own canonical-order arrays); the host then skips
    #: building the ``index_of`` dict and passes ``None`` unless window
    #: boundary records need it anyway.
    wants_index_of = True

    def __init__(self, host: "ScanlineEngine") -> None:
        self.host = host

    def process_strip(
        self, y_lo: int, y_hi: int, stream: "GeometryStream"
    ) -> None:
        """Step 2.c for the strip ``[y_lo, y_hi)``."""
        raise NotImplementedError

    def process_run(
        self,
        stop0: int,
        strips: "list[tuple[int, int]]",
        diff_rows: "list[int]",
        born_start: int,
    ) -> None:
        """Step 2.c for a *run* of deferred consecutive stops.

        ``strips`` holds one ``(y_lo, y_hi)`` band per stop, top to
        bottom, for stop ordinals ``stop0 .. stop0 + len(strips) - 1``.
        ``diff_rows`` are the diffusion-layer row ids live when the run
        opened and ``born_start`` the diffusion row count at that
        moment; together with the columnar ``born``/``died`` stop
        stamps they reconstruct every strip's diffusion view.  The host
        guarantees: no strip in the run binds vertically to its
        predecessor, the contact/buried/implant tables were empty for
        every strip, the poly table is unchanged since the run opened,
        no label lands in any strip, and no union-find call was issued
        since the run opened.  Only engines with ``supports_runs`` set
        receive this call.
        """
        raise NotImplementedError

    def touch_net(self, net: int, xmin: int, ymax: int) -> None:
        """Record a net sighting for the topmost/leftmost location fold."""
        raise NotImplementedError

    def net_order(
        self,
    ) -> "tuple[list[int], list[tuple[int, int]]]":
        """Canonical net order after the sweep.

        Returns ``(roots, locations)``: net roots sorted topmost-then-
        leftmost (the wirelist's net numbering) and, aligned with it,
        each net's display location ``(xmin, ymax)``.
        """
        raise NotImplementedError

    def build_devices(
        self,
        index_of: "dict[int, int]",
        kind_enh: str,
        kind_dep: str,
        boundary_dev_roots: "set[int]",
    ) -> "tuple[list, dict[int, int], list[str]]":
        """Folded, ordered, fully materialized device records.

        ``index_of`` maps net roots to 1-based wirelist indices; it is
        ``None`` when the engine set :attr:`wants_index_of` False and
        nothing else needed the dict -- such an engine reconstructs the
        mapping from its own canonical net order.
        Returns ``(devices, dev_index_of, warnings)``: the
        :class:`~repro.core.netlist.Device` list in canonical order,
        the device-root to device-index map the host needs for boundary
        records, and the malformed-transistor warnings in device order.
        The engine owns materialization so a batch back-end can build
        the bulk of the objects with C-level ``map``/``zip`` passes
        instead of one python iteration per device.
        """
        raise NotImplementedError

    # -- banded streaming hooks (docs/STREAMING.md) --------------------

    def live_roots(self) -> "tuple[set[int], set[int]]":
        """Net and device roots still reachable from strip-above state.

        Everything the next strip can union with lives in the previous
        strip's conducting spans and channels; together with the host's
        :meth:`~repro.core.scanline.ScanlineEngine.live_net_roots` this
        defines which roots a banded sweep may retire.
        """
        raise NotImplementedError

    def retire(
        self, live_nets: "set[int]", live_devs: "set[int]"
    ) -> "tuple[dict[int, tuple[int, int]], dict[int, dict]]":
        """Drop and return accumulated state of roots not in the live sets.

        Returns ``(net_locations, device_records)`` keyed by root:
        each net's folded ``(ymax, -xmin)`` location and each device's
        folded attribute record in the reference engine's format
        (``area``/``gates``/``terms``/``geo``/``loc``/``impl``).  Dead
        roots never union again, so the folds equal the finalize-time
        folds restricted to those roots.
        """
        raise NotImplementedError

    def snapshot_state(self) -> dict:
        """JSON-compatible engine state for a band-boundary checkpoint."""
        raise NotImplementedError

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`snapshot_state`."""
        raise NotImplementedError


def create_strip_engine(name: str, host: "ScanlineEngine") -> StripEngine:
    """Resolve ``name`` and instantiate the matching engine."""
    resolved = resolve_engine(name)
    if resolved == "numpy":
        from .engine_numpy import NumpyStripEngine

        return NumpyStripEngine(host)
    from .engine_python import PythonStripEngine

    return PythonStripEngine(host)
