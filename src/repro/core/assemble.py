"""Shared final assembly of a Circuit from extraction working state.

All three extractors (ACE's scanline, the raster baseline, the region
baseline) accumulate the same working state: net/device union-finds plus
per-id attribute tables.  This module folds that state into the canonical
:class:`~repro.core.netlist.Circuit` so net numbering, device ordering,
and sizing conventions are identical across extractors -- a precondition
for the netlist-equivalence tests.
"""

from __future__ import annotations

from .netlist import Circuit, Device, Net
from .sizing import size_device
from .unionfind import UnionFind


def assemble_circuit(
    tech,
    nets: UnionFind,
    devs: UnionFind,
    net_loc: "dict[int, tuple[int, int]]",
    net_names: "dict[int, list[str]]",
    dev_rec: "dict[int, dict]",
    warnings: "list[str]",
    net_geo: "dict[int, list] | None" = None,
) -> Circuit:
    """Fold working state into a Circuit.

    ``net_loc`` maps net id to ``(ymax, -xmin)`` of its topmost-leftmost
    geometry; ``dev_rec`` maps device id to a record with keys ``area``,
    ``gates`` (net ids), ``terms`` (net id -> contact perimeter), ``loc``,
    ``impl`` and optionally ``geo``.
    """
    names = nets.fold(net_names)
    geometry = nets.fold(net_geo) if net_geo else {}
    locations: dict[int, tuple[int, int]] = {}
    for ident, loc in net_loc.items():
        root = nets.find(ident)
        if root not in locations or loc > locations[root]:
            locations[root] = loc

    roots = sorted(
        locations, key=lambda r: (-locations[r][0], -locations[r][1], r)
    )
    index_of = {root: i + 1 for i, root in enumerate(roots)}
    net_objs = []
    for root in roots:
        ymax, neg_xmin = locations[root]
        seen: set[str] = set()
        uniq = [n for n in names.get(root, []) if not (n in seen or seen.add(n))]
        net_objs.append(
            Net(
                index=index_of[root],
                names=uniq,
                location=(-neg_xmin, ymax),
                geometry=geometry.get(root, []),
            )
        )

    folded: dict[int, dict] = {}
    for ident, rec in dev_rec.items():
        root = devs.find(ident)
        into = folded.get(root)
        if into is None or into is rec:
            folded[root] = rec
            continue
        into["area"] += rec["area"]
        into["gates"] |= rec["gates"]
        for net, length in rec["terms"].items():
            into["terms"][net] = into["terms"].get(net, 0) + length
        if "geo" in into and "geo" in rec:
            into["geo"].extend(rec["geo"])
        if rec["loc"] is not None and (
            into["loc"] is None or rec["loc"] > into["loc"]
        ):
            into["loc"] = rec["loc"]
        into["impl"] = into["impl"] or rec["impl"]

    order = sorted(
        folded,
        key=lambda r: (
            (-folded[r]["loc"][0], -folded[r]["loc"][1])
            if folded[r]["loc"]
            else (0, 0),
            r,
        ),
    )
    devices = []
    for i, root in enumerate(order):
        rec = folded[root]
        terms: dict[int, int] = {}
        for net, length in rec["terms"].items():
            idx = index_of.get(nets.find(net))
            if idx is not None:
                terms[idx] = terms.get(idx, 0) + length
        gates = sorted(
            {
                index_of[nets.find(g)]
                for g in rec["gates"]
                if nets.find(g) in index_of
            }
        )
        sized = size_device(rec["area"], terms)
        loc = rec["loc"]
        devices.append(
            Device(
                index=i,
                kind=tech.device_name(rec["impl"]),
                gate=gates[0] if gates else None,
                source=sized.source,
                drain=sized.drain,
                length=sized.length,
                width=sized.width,
                area=rec["area"],
                location=(-loc[1], loc[0]) if loc else None,
                terminals=terms,
                gates=gates,
                geometry=list(rec.get("geo", [])),
                depletion=rec["impl"],
            )
        )
    return Circuit(nets=net_objs, devices=devices, warnings=list(warnings))
