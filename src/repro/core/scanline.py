"""The edge-based scanline back-end (section 3 of the paper).

A scanline moves from the top of the chip to the bottom, pausing only at
box top/bottom edges.  Between consecutive stops the layer state is
constant -- a *strip*.  Per layer, an *active list* of disjoint, sorted
x-intervals describes the strip; nets live in a union-find.

The implementation follows Figure 3-2 step for step:

  2.a  incoming geometry is sorted by x into per-layer newGeometry lists
       (here: delivered sorted by the stream, inserted one by one);
  2.b  new boxes merge into the active lists; overlapping or abutting
       boxes on one layer union their nets; when merged boxes have
       unequal bottoms, the deeper remainder is split off into a pending
       buffer and re-enters when the scanline reaches its top;
  2.c  devices: per strip, channel = diffusion AND poly AND NOT buried;
       conducting diffusion = diffusion - channel; channels are tracked
       exactly like nets (a union-find of device ids) and accumulate
       area, gate nets, and terminal contact perimeter;
  2.d  next stop = max over upcoming box tops and active bottoms.

In *window mode* (HEXT's modified ACE) the engine also records every
conducting span and channel span that touches the window boundary; those
records become the window's interface.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right

from ..frontend.instantiate import PlacedLabel
from ..frontend.stream import GeometryStream
from ..geometry import Box
from ..tech import Technology
from .netlist import CHANNEL, BoundaryRecord, Circuit, Face
from .sizing import size_device
from .stats import PhaseTimer, ScanStats
from .unionfind import UnionFind

# Active-interval field indices (plain lists are measurably faster than
# objects in this inner loop).
_X1, _X2, _YBOT, _NET = 0, 1, 2, 3

#: Deliberately broken scanline rules, set only by the differential
#: harness's fault-injection self-test (:mod:`repro.difftest.faults`).
#: Always empty in normal operation.  Each name disables exactly one
#: connectivity rule in :meth:`ScanlineEngine._process_strip` so the
#: harness can prove it detects and shrinks a real extractor bug.
FAULTS: frozenset[str] = frozenset()


class ScanlineEngine:
    """One extraction run over a geometry stream."""

    def __init__(
        self,
        tech: Technology,
        *,
        keep_geometry: bool = False,
        window: Box | None = None,
        timer: PhaseTimer | None = None,
    ) -> None:
        self.tech = tech
        self.keep_geometry = keep_geometry
        self.window = window
        self.timer = timer or PhaseTimer()
        self.stats = ScanStats()

        self._metal = tech.conducting_layers[0].cif_name
        self._poly = tech.channel_layers[1].cif_name
        self._diff = tech.channel_layers[0].cif_name
        self._contact = tech.contact_layer.cif_name
        self._implant = tech.depletion_marker.cif_name
        self._buried = tech.buried_layer.cif_name
        #: layers whose active intervals carry net ids directly
        self._net_layers = frozenset(
            layer.cif_name
            for layer in tech.conducting_layers
            if layer.cif_name != self._diff
        )
        tracked = {
            self._metal,
            self._poly,
            self._diff,
            self._contact,
            self._implant,
            self._buried,
        }
        self._active: dict[str, list[list]] = {name: [] for name in tracked}
        self._keys: dict[str, list[int]] = {name: [] for name in tracked}
        self._ignored = {layer.cif_name for layer in tech.ignored_layers}

        self._nets = UnionFind()
        self._devs = UnionFind()
        self._net_loc: dict[int, tuple[int, int]] = {}  # id -> (ymax, -xmin)
        self._net_names: dict[int, list[str]] = {}
        self._net_geo: dict[int, list[tuple[str, Box]]] = {}
        self._dev: dict[int, dict] = {}  # device id -> attribute record

        self._pending: list[tuple[int, int, str, int, int, int, int | None]] = []
        self._pending_seq = 0
        self._labels: list[PlacedLabel] = []
        self._labels_taken = 0
        self._unattached: list[PlacedLabel] = []
        self._boundary: list[tuple[Face, str, int, int, int]] = []
        self._warnings: list[str] = []
        self._unknown_layers: set[str] = set()

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def run(self, stream: GeometryStream) -> Circuit:
        """Sweep the stream top to bottom and return the circuit."""
        timer = self.timer
        timer.start("frontend")
        y = stream.next_top()
        if self._pending:
            top = -self._pending[0][0]
            y = top if y is None else max(y, top)

        prev_spans: dict[str, list[tuple[int, int, int]]] = {
            layer: [] for layer in self._net_layers
        }
        prev_diff: list[tuple[int, int, int]] = []
        prev_channels: list[tuple[int, int, int]] = []

        while y is not None:
            self.stats.stops += 1
            timer.start("insert")
            self._expire(y)
            timer.start("frontend")
            new_boxes = stream.fetch(y)
            timer.start("insert")
            self._enter_continuations(y)
            for layer, box in new_boxes:
                self.stats.boxes_in += 1
                self._insert(
                    layer, box.xmin, box.xmax, box.ymin, None, prev_spans, box
                )
            y_next = self._next_stop(stream, y)
            if y_next is None:
                break
            timer.start("devices")
            prev_spans, prev_diff, prev_channels = self._process_strip(
                y_next, y, prev_spans, prev_diff, prev_channels, stream
            )
            timer.start("frontend")
            y = y_next

        timer.start("output")
        circuit = self._finalize()
        timer.stop()
        return circuit

    def _next_stop(self, stream: GeometryStream, y: int) -> int | None:
        candidates: list[int] = []
        top = stream.next_top()
        if top is not None:
            candidates.append(top)
        if self._pending:
            candidates.append(-self._pending[0][0])
        for intervals in self._active.values():
            for interval in intervals:
                candidates.append(interval[_YBOT])
        if not candidates:
            return None
        y_next = max(candidates)
        if y_next >= y:  # pragma: no cover - sweep invariant
            raise AssertionError(f"scanline failed to advance: {y_next} >= {y}")
        return y_next

    # ------------------------------------------------------------------
    # active-list maintenance (steps 2.a / 2.b)
    # ------------------------------------------------------------------

    def _expire(self, y: int) -> None:
        """Drop intervals whose bottom edge coincides with the scanline."""
        for layer, intervals in self._active.items():
            if any(iv[_YBOT] == y for iv in intervals):
                kept = [iv for iv in intervals if iv[_YBOT] != y]
                self._active[layer] = kept
                self._keys[layer] = [iv[_X1] for iv in kept]

    def _enter_continuations(self, y: int) -> None:
        """Re-insert buffered lower portions whose top is the scanline."""
        pending = self._pending
        while pending and -pending[0][0] == y:
            _, _, layer, x1, x2, ybot, net = heapq.heappop(pending)
            self._insert(layer, x1, x2, ybot, net, None, None)

    def _insert(
        self,
        layer: str,
        x1: int,
        x2: int,
        ybot: int,
        net: int | None,
        prev_spans: dict[str, list[tuple[int, int, int]]] | None,
        box: Box | None,
    ) -> None:
        """Merge one box (or continuation) into a layer's active list.

        ``net`` is None for fresh geometry (a net is allocated on demand
        for net-carrying layers) and pre-bound for continuations.  ``box``
        is the original artwork box for geometry/location bookkeeping and
        None for continuations, whose upper part was already recorded.
        """
        intervals = self._active.get(layer)
        if intervals is None:
            if layer not in self._ignored and layer not in self._unknown_layers:
                self._unknown_layers.add(layer)
                self._warnings.append(f"ignoring geometry on unknown layer {layer}")
            return
        keys = self._keys[layer]
        carries_net = layer in self._net_layers

        if carries_net:
            if net is None:
                net = self._nets.make()
                self.stats.nets_created += 1
            if prev_spans is not None:
                # Vertical adjacency: new geometry starting exactly where
                # the strip above ended joins the net above it.
                for px1, px2, pnet in prev_spans[layer]:
                    if px1 >= x2:
                        break
                    if px2 > x1:
                        net = self._nets.union(net, pnet)
            if box is not None:
                self._touch_net(net, box.xmin, box.ymax)
                if self.keep_geometry:
                    self._net_geo.setdefault(net, []).append((layer, box))
        else:
            net = None

        # Locate the run of intervals that overlap or abut [x1, x2].
        lo = bisect_left(keys, x1)
        if lo > 0 and intervals[lo - 1][_X2] >= x1:
            lo -= 1
        hi = bisect_right(keys, x2, lo=lo)
        if lo == hi:
            intervals.insert(lo, [x1, x2, ybot, net])
            keys.insert(lo, x1)
            return

        # Merge the new box with intervals[lo:hi] (step 2.b).  The merged
        # interval lives until the *earliest* bottom; the deeper remainder
        # of every taller piece re-enters from the pending buffer.
        self.stats.merges += 1
        pieces = intervals[lo:hi]
        new_x1 = min(x1, pieces[0][_X1])
        new_x2 = max(x2, pieces[-1][_X2])
        max_bot = ybot
        for piece in pieces:
            if piece[_YBOT] > max_bot:
                max_bot = piece[_YBOT]
            if carries_net:
                net = self._nets.union(net, piece[_NET])
        for piece in pieces:
            if piece[_YBOT] < max_bot:
                self._push_pending(
                    layer, piece[_X1], piece[_X2], max_bot, piece[_YBOT], net
                )
        if ybot < max_bot:
            self._push_pending(layer, x1, x2, max_bot, ybot, net)
        intervals[lo:hi] = [[new_x1, new_x2, max_bot, net]]
        keys[lo:hi] = [new_x1]

    def _push_pending(
        self, layer: str, x1: int, x2: int, top: int, ybot: int, net: int | None
    ) -> None:
        self.stats.splits += 1
        self._pending_seq += 1
        heapq.heappush(
            self._pending, (-top, self._pending_seq, layer, x1, x2, ybot, net)
        )

    # ------------------------------------------------------------------
    # strip processing (step 2.c)
    # ------------------------------------------------------------------

    def _process_strip(
        self,
        y_lo: int,
        y_hi: int,
        prev_spans: dict[str, list[tuple[int, int, int]]],
        prev_diff: list[tuple[int, int, int]],
        prev_channels: list[tuple[int, int, int]],
        stream: GeometryStream,
    ) -> tuple[
        dict[str, list[tuple[int, int, int]]],
        list[tuple[int, int, int]],
        list[tuple[int, int, int]],
    ]:
        height = y_hi - y_lo
        nets = self._nets
        find = nets.find

        total_active = sum(len(ivs) for ivs in self._active.values())
        self.stats.observe_active(total_active)
        if total_active:
            self.stats.strips += 1

        nd = [(iv[_X1], iv[_X2]) for iv in self._active[self._diff]]
        np_ = self._active[self._poly]
        nb = [(iv[_X1], iv[_X2]) for iv in self._active[self._buried]]
        ni = [(iv[_X1], iv[_X2]) for iv in self._active[self._implant]]

        # Channels: diffusion AND poly AND NOT buried, remembering the
        # poly interval that forms each gate.
        channels: list[tuple[int, int, int]] = []  # (x1, x2, poly net id)
        buried_holes = [] if "channel-under-buried" in FAULTS else nb
        if nd and np_:
            for x1, x2, poly_net in _intersect_with_net(nd, np_):
                for cx1, cx2 in _subtract_spans([(x1, x2)], buried_holes):
                    channels.append((cx1, cx2, poly_net))

        # Conducting diffusion: diffusion minus channels.
        cond_bare = _subtract_spans(nd, [(c[0], c[1]) for c in channels])

        # Assign diffusion nets by vertical adjacency to the strip above.
        cond: list[tuple[int, int, int]] = []
        for x1, x2 in cond_bare:
            net = None
            for px1, px2, pnet in prev_diff:
                if px1 >= x2:
                    break
                if px2 > x1:
                    net = pnet if net is None else nets.union(net, pnet)
            if net is None:
                net = nets.make()
                self.stats.nets_created += 1
            self._touch_net(net, x1, y_hi)
            if self.keep_geometry:
                self._net_geo.setdefault(net, []).append(
                    (self._diff, Box(x1, y_lo, x2, y_hi))
                )
            cond.append((x1, x2, net))

        # Devices: channel spans inherit device identity from above.
        strip_channels: list[tuple[int, int, int]] = []
        for x1, x2, poly_net in channels:
            dev = None
            for px1, px2, pdev in prev_channels:
                if px1 >= x2:
                    break
                if px2 > x1:
                    dev = pdev if dev is None else self._devs.union(dev, pdev)
            if dev is None:
                dev = self._devs.make()
                self.stats.devices_created += 1
                self._dev[dev] = {
                    "area": 0,
                    "gates": set(),
                    "terms": {},
                    "geo": [],
                    "loc": None,
                    "impl": False,
                }
            rec = self._dev[self._devs.find(dev)]
            rec["area"] += (x2 - x1) * height
            rec["gates"].add(find(poly_net))
            rec["geo"].append(Box(x1, y_lo, x2, y_hi))
            loc = (y_hi, -x1)
            if rec["loc"] is None or loc > rec["loc"]:
                rec["loc"] = loc
            if ni and _overlaps_any(x1, x2, ni):
                rec["impl"] = True
            strip_channels.append((x1, x2, dev))

        # Terminal contacts.
        if strip_channels:
            # horizontal: conducting diffusion abutting a channel sideways
            for cx1, cx2, dev in strip_channels:
                for dx1, dx2, dnet in cond:
                    if dx2 == cx1 or dx1 == cx2:
                        self._add_terminal(dev, dnet, height)
            # vertical: channel below conducting diffusion of the strip above
            for cx1, cx2, dev in strip_channels:
                for px1, px2, pnet in prev_diff:
                    if px1 >= cx2:
                        break
                    overlap = min(cx2, px2) - max(cx1, px1)
                    if overlap > 0:
                        self._add_terminal(dev, pnet, overlap)
        if prev_channels and cond:
            # vertical: conducting diffusion below a channel of the strip above
            for dx1, dx2, dnet in cond:
                for px1, px2, pdev in prev_channels:
                    if px1 >= dx2:
                        break
                    overlap = min(dx2, px2) - max(dx1, px1)
                    if overlap > 0:
                        self._add_terminal(pdev, dnet, overlap)

        # Contact cuts union conducting nets wherever the layers overlap
        # both each other and the cut (pointwise, not per cut span).
        nc = self._active[self._contact]
        if nc:
            metal = self._active[self._metal]
            for cut in nc:
                cx1, cx2 = cut[_X1], cut[_X2]
                present: list[tuple[int, int, int]] = []
                for iv in metal:
                    if iv[_X1] < cx2 and iv[_X2] > cx1:
                        present.append(
                            (max(iv[_X1], cx1), min(iv[_X2], cx2), iv[_NET])
                        )
                for iv in np_:
                    if iv[_X1] < cx2 and iv[_X2] > cx1:
                        present.append(
                            (max(iv[_X1], cx1), min(iv[_X2], cx2), iv[_NET])
                        )
                for dx1, dx2, dnet in cond:
                    if dx1 < cx2 and dx2 > cx1:
                        present.append((max(dx1, cx1), min(dx2, cx2), dnet))
                present.sort()
                for i, (a1, a2, anet) in enumerate(present):
                    for b1, b2, bnet in present[i + 1 :]:
                        if b1 >= a2:
                            break
                        nets.union(anet, bnet)

        # Buried contacts union poly and diffusion where all three meet.
        if nb and cond and "buried-skip" not in FAULTS:
            for bx1, bx2 in nb:
                for iv in np_:
                    px1, px2 = max(iv[_X1], bx1), min(iv[_X2], bx2)
                    if px1 >= px2:
                        continue
                    for dx1, dx2, dnet in cond:
                        if dx1 < px2 and dx2 > px1:
                            nets.union(iv[_NET], dnet)

        self._attach_labels(y_lo, y_hi, cond, stream)

        if self.window is not None:
            self._capture_boundary(y_lo, y_hi, cond, strip_channels)

        new_prev = {
            layer: [(iv[_X1], iv[_X2], iv[_NET]) for iv in self._active[layer]]
            for layer in self._net_layers
        }
        return new_prev, cond, strip_channels

    def _add_terminal(self, dev: int, net: int, length: int) -> None:
        rec = self._dev[self._devs.find(dev)]
        root = self._nets.find(net)
        rec["terms"][root] = rec["terms"].get(root, 0) + length

    def _touch_net(self, net: int, xmin: int, ymax: int) -> None:
        loc = (ymax, -xmin)
        current = self._net_loc.get(net)
        if current is None or loc > current:
            self._net_loc[net] = loc

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------

    def _attach_labels(
        self,
        y_lo: int,
        y_hi: int,
        cond: list[tuple[int, int, int]],
        stream: GeometryStream,
    ) -> None:
        fresh = stream.labels()
        if len(fresh) > self._labels_taken:
            self._labels.extend(fresh[self._labels_taken :])
            self._labels_taken = len(fresh)
        if not self._labels:
            return
        remaining: list[PlacedLabel] = []
        for label in self._labels:
            if label.y > y_hi:
                self._unattached.append(label)
            elif label.y < y_lo:
                remaining.append(label)
            else:
                net = self._net_at_point(label, cond)
                if net is None:
                    self._unattached.append(label)
                else:
                    self._net_names.setdefault(net, []).append(label.name)
        self._labels = remaining

    def _net_at_point(
        self, label: PlacedLabel, cond: list[tuple[int, int, int]]
    ) -> int | None:
        layers: tuple[str, ...]
        if label.layer:
            layers = (label.layer,)
        else:
            layers = (self._metal, self._poly, self._diff)
        x = label.x
        for layer in layers:
            if layer == self._diff:
                for x1, x2, net in cond:
                    if x1 <= x <= x2:
                        return net
            elif layer in self._net_layers:
                for iv in self._active[layer]:
                    if iv[_X1] <= x <= iv[_X2]:
                        return iv[_NET]
        return None

    # ------------------------------------------------------------------
    # window boundary capture (HEXT's modified ACE)
    # ------------------------------------------------------------------

    def _capture_boundary(
        self,
        y_lo: int,
        y_hi: int,
        cond: list[tuple[int, int, int]],
        strip_channels: list[tuple[int, int, int]],
    ) -> None:
        window = self.window
        assert window is not None
        records = self._boundary

        def sides(layer: str, x1: int, x2: int, ident: int) -> None:
            if x1 == window.xmin:
                records.append((Face.LEFT, layer, y_lo, y_hi, ident))
            if x2 == window.xmax:
                records.append((Face.RIGHT, layer, y_lo, y_hi, ident))

        for layer in self._net_layers:
            for iv in self._active[layer]:
                sides(layer, iv[_X1], iv[_X2], iv[_NET])
        for x1, x2, net in cond:
            sides(self._diff, x1, x2, net)
        for x1, x2, dev in strip_channels:
            sides(CHANNEL, x1, x2, dev)

        if y_hi == window.ymax:
            for layer in self._net_layers:
                for iv in self._active[layer]:
                    records.append(
                        (Face.TOP, layer, iv[_X1], iv[_X2], iv[_NET])
                    )
            for x1, x2, net in cond:
                records.append((Face.TOP, self._diff, x1, x2, net))
            for x1, x2, dev in strip_channels:
                records.append((Face.TOP, CHANNEL, x1, x2, dev))
        if y_lo == window.ymin:
            for layer in self._net_layers:
                for iv in self._active[layer]:
                    records.append(
                        (Face.BOTTOM, layer, iv[_X1], iv[_X2], iv[_NET])
                    )
            for x1, x2, net in cond:
                records.append((Face.BOTTOM, self._diff, x1, x2, net))
            for x1, x2, dev in strip_channels:
                records.append((Face.BOTTOM, CHANNEL, x1, x2, dev))

    # ------------------------------------------------------------------
    # finalize (step 3)
    # ------------------------------------------------------------------

    def _finalize(self) -> Circuit:
        from .netlist import Device, Net

        nets = self._nets
        for label in self._labels:  # below all geometry
            self._unattached.append(label)
        self._labels = []

        names = nets.fold(self._net_names)
        geometry = nets.fold(self._net_geo) if self.keep_geometry else {}
        locations: dict[int, tuple[int, int]] = {}
        for ident, loc in self._net_loc.items():
            root = nets.find(ident)
            if root not in locations or loc > locations[root]:
                locations[root] = loc

        # Canonical net order: topmost, then leftmost, location first.
        roots = sorted(
            locations,
            key=lambda r: (-locations[r][0], -locations[r][1], r),
        )
        index_of = {root: i + 1 for i, root in enumerate(roots)}

        net_objs = []
        for root in roots:
            ymax, neg_xmin = locations[root]
            seen: set[str] = set()
            uniq = [
                n
                for n in names.get(root, [])
                if not (n in seen or seen.add(n))
            ]
            net_objs.append(
                Net(
                    index=index_of[root],
                    names=uniq,
                    location=(-neg_xmin, ymax),
                    geometry=geometry.get(root, []),
                )
            )

        # Fold device records by device root.
        dev_roots: dict[int, dict] = {}
        for ident, rec in self._dev.items():
            root = self._devs.find(ident)
            into = dev_roots.get(root)
            if into is None or into is rec:
                dev_roots[root] = rec
                continue
            into["area"] += rec["area"]
            into["gates"] |= rec["gates"]
            for net, length in rec["terms"].items():
                into["terms"][net] = into["terms"].get(net, 0) + length
            into["geo"].extend(rec["geo"])
            if rec["loc"] is not None and (
                into["loc"] is None or rec["loc"] > into["loc"]
            ):
                into["loc"] = rec["loc"]
            into["impl"] = into["impl"] or rec["impl"]

        boundary_devs = {
            ident
            for _, layer, _, _, ident in self._boundary
            if layer == CHANNEL
        }
        boundary_dev_roots = {self._devs.find(d) for d in boundary_devs}

        devices = []
        dev_index_of: dict[int, int] = {}
        order = sorted(
            dev_roots,
            key=lambda r: (
                (-dev_roots[r]["loc"][0], -dev_roots[r]["loc"][1])
                if dev_roots[r]["loc"]
                else (0, 0),
                r,
            ),
        )
        warnings = list(self._warnings)
        for i, root in enumerate(order):
            rec = dev_roots[root]
            terms = {}
            for net, length in rec["terms"].items():
                net_root = nets.find(net)
                idx = index_of.get(net_root)
                if idx is not None:
                    terms[idx] = terms.get(idx, 0) + length
            gate_indices = sorted(
                {index_of[nets.find(g)] for g in rec["gates"] if nets.find(g) in index_of}
            )
            sized = size_device(rec["area"], terms)
            loc = rec["loc"]
            device = Device(
                index=i,
                kind=self.tech.device_name(rec["impl"]),
                gate=gate_indices[0] if gate_indices else None,
                source=sized.source,
                drain=sized.drain,
                length=sized.length,
                width=sized.width,
                area=rec["area"],
                location=(-loc[1], loc[0]) if loc else None,
                terminals=terms,
                gates=gate_indices,
                geometry=rec["geo"],
                touches_boundary=root in boundary_dev_roots,
                depletion=rec["impl"],
            )
            devices.append(device)
            dev_index_of[root] = i
            if device.is_malformed and not device.touches_boundary:
                warnings.append(
                    f"malformed transistor at {device.location}: "
                    f"{len(gate_indices)} gate nets, {len(terms)} terminals"
                )

        for label in self._unattached:
            warnings.append(
                f"label {label.name!r} at ({label.x}, {label.y}) "
                f"matches no conducting geometry"
            )

        boundary = []
        for face, layer, lo, hi, ident in self._boundary:
            if layer == CHANNEL:
                mapped = dev_index_of.get(self._devs.find(ident))
            else:
                mapped = index_of.get(nets.find(ident))
            if mapped is not None:
                boundary.append(BoundaryRecord(face, layer, lo, hi, mapped))

        return Circuit(
            nets=net_objs,
            devices=devices,
            boundary=_coalesce_boundary(boundary),
            warnings=warnings,
        )


# ----------------------------------------------------------------------
# span helpers (disjoint sorted span lists)
# ----------------------------------------------------------------------


def _intersect_with_net(
    spans: list[tuple[int, int]], intervals: list[list]
) -> list[tuple[int, int, int]]:
    """Intersect bare spans with net-carrying intervals (both sorted)."""
    out: list[tuple[int, int, int]] = []
    i = j = 0
    while i < len(spans) and j < len(intervals):
        a1, a2 = spans[i]
        iv = intervals[j]
        b1, b2 = iv[_X1], iv[_X2]
        lo, hi = max(a1, b1), min(a2, b2)
        if lo < hi:
            out.append((lo, hi, iv[_NET]))
        if a2 <= b2:
            i += 1
        else:
            j += 1
    return out


def _subtract_spans(
    spans: list[tuple[int, int]], holes: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Spans minus holes; inputs sorted and disjoint, output likewise."""
    if not holes:
        return list(spans)
    out: list[tuple[int, int]] = []
    for lo, hi in spans:
        pos = lo
        for hlo, hhi in holes:
            if hhi <= pos:
                continue
            if hlo >= hi:
                break
            if hlo > pos:
                out.append((pos, hlo))
            pos = max(pos, hhi)
            if pos >= hi:
                break
        if pos < hi:
            out.append((pos, hi))
    return out


def _overlaps_any(x1: int, x2: int, spans: list[tuple[int, int]]) -> bool:
    for lo, hi in spans:
        if lo >= x2:
            return False
        if hi > x1:
            return True
    return False


def _coalesce_boundary(records: list[BoundaryRecord]) -> list[BoundaryRecord]:
    """Join per-strip boundary records that continue one another."""
    records.sort(key=lambda r: (r.face.value, r.layer, r.ident, r.lo))
    out: list[BoundaryRecord] = []
    for rec in records:
        prev = out[-1] if out else None
        if (
            prev is not None
            and prev.face == rec.face
            and prev.layer == rec.layer
            and prev.ident == rec.ident
            and prev.hi >= rec.lo
        ):
            if rec.hi > prev.hi:
                out[-1] = BoundaryRecord(
                    prev.face, prev.layer, prev.lo, rec.hi, prev.ident
                )
        else:
            out.append(rec)
    return out
