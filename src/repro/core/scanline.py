"""The edge-based scanline back-end (section 3 of the paper).

A scanline moves from the top of the chip to the bottom, pausing only at
box top/bottom edges.  Between consecutive stops the layer state is
constant -- a *strip*.  Per layer, an *active list* of disjoint, sorted
x-intervals describes the strip; nets live in a union-find.

The implementation follows Figure 3-2 step for step:

  2.a  incoming geometry is sorted by x into per-layer newGeometry lists
       (here: delivered sorted by the stream, inserted one by one);
  2.b  new boxes merge into the active lists; overlapping or abutting
       boxes on one layer union their nets; when merged boxes have
       unequal bottoms, the deeper remainder is split off into a pending
       buffer and re-enters when the scanline reaches its top;
  2.c  devices: per strip, channel = diffusion AND poly AND NOT buried;
       conducting diffusion = diffusion - channel; channels are tracked
       exactly like nets (a union-find of device ids) and accumulate
       area, gate nets, and terminal contact perimeter;
  2.d  next stop = max over upcoming box tops and active bottoms.

Event scheduling is heap-based so a stop costs work proportional to the
events at that stop, not to the number of active intervals: every active
interval is registered on a per-layer bottom-edge heap when created, and
an interval consumed by a merge is *lazily invalidated* -- its heap entry
stays behind, marked dead, and is discarded when it surfaces.  Step 2.d
is then a constant number of heap peeks and step "expire" pops exactly
the intervals whose bottom edge is the current stop.  The design notes
and invariants live in docs/SCANLINE_PERF.md.

In *window mode* (HEXT's modified ACE) the engine also records every
conducting span and channel span that touches the window boundary; those
records become the window's interface.

The per-strip *value* computation (step 2.c and the finalize folds) is
delegated to a pluggable :class:`~repro.core.stripengine.StripEngine`:
the pure-python reference back-end or, when numpy is importable, a
vectorized strip-batch back-end.  Both produce byte-identical wirelists;
docs/ENGINES.md documents the split and the parity contract.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right

from ..frontend.instantiate import PlacedLabel
from ..frontend.stream import GeometryStream
from ..geometry import Box
from ..tech import Technology
from .netlist import CHANNEL, BoundaryRecord, Circuit, Face
from .stats import PhaseTimer, ScanStats
from .stripengine import CondSource, create_strip_engine
from .unionfind import UnionFind

# Active-interval field indices (plain lists are measurably faster than
# objects in this inner loop).  _LIVE is the lazy-deletion flag: cleared
# when a merge or expiry retires the interval while its heap entry is
# still queued.  _BORN is the stop ordinal the interval was created at,
# which distinguishes strip-above survivors from same-stop newcomers.
_X1, _X2, _YBOT, _NET, _LIVE, _BORN = 0, 1, 2, 3, 4, 5

#: Deliberately broken scanline rules, set only by the differential
#: harness's fault-injection self-test (:mod:`repro.difftest.faults`).
#: Always empty in normal operation.  Each name disables exactly one
#: connectivity rule in the strip engines' strip processing (both
#: back-ends honour the same names) so the harness can prove it detects
#: and shrinks a real extractor bug.
FAULTS: frozenset[str] = frozenset()


class StripConsumer:
    """A second consumer of the scanline strip decomposition.

    The engine already pays for the per-layer active lists; a consumer
    rides the same sweep instead of re-sorting the geometry stream.
    :meth:`observe_strip` is called once per strip, top to bottom, with
    contiguous ``[y_lo, y_hi)`` bands, ``spans`` holding each tracked
    layer's disjoint sorted ``(x1, x2)`` intervals for the strip, and
    ``channels`` the strip's transistor-channel spans ``(x1, x2, net)``
    (diffusion AND poly AND NOT buried).  :meth:`finish` is called once
    after the sweep ends.  The design-rule checker
    (:class:`repro.drc.checker.DrcChecker`) is the canonical
    implementation.
    """

    def observe_strip(
        self,
        y_lo: int,
        y_hi: int,
        spans: dict[str, list[tuple[int, int]]],
        channels: list[tuple[int, int, int]],
    ) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def finish(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class ScanlineEngine:
    """One extraction run over a geometry stream."""

    def __init__(
        self,
        tech: Technology,
        *,
        keep_geometry: bool = False,
        window: Box | None = None,
        timer: PhaseTimer | None = None,
        strip_consumers: "tuple[StripConsumer, ...]" = (),
        engine: str = "auto",
    ) -> None:
        self.tech = tech
        self.keep_geometry = keep_geometry
        self.window = window
        self.timer = timer or PhaseTimer()
        self.stats = ScanStats()
        self.strip_consumers = tuple(strip_consumers)

        self._metal = tech.conducting_layers[0].cif_name
        self._poly = tech.channel_layers[1].cif_name
        self._diff = tech.channel_layers[0].cif_name
        self._contact = tech.contact_layer.cif_name
        self._implant = tech.depletion_marker.cif_name
        self._buried = tech.buried_layer.cif_name
        #: layers whose active intervals carry net ids directly
        self._net_layers = frozenset(
            layer.cif_name
            for layer in tech.conducting_layers
            if layer.cif_name != self._diff
        )
        tracked = {
            self._metal,
            self._poly,
            self._diff,
            self._contact,
            self._implant,
            self._buried,
        }
        self._active: dict[str, list[list]] = {name: [] for name in tracked}
        self._keys: dict[str, list[int]] = {name: [] for name in tracked}
        #: per-layer mutation counters; batch engines key their cached
        #: array materializations on these, so an unchanged layer is
        #: converted to flat arrays once, not once per strip.
        self._versions: dict[str, int] = {name: 0 for name in tracked}
        #: per-layer bottom-edge event heaps of (-ybot, seq, interval)
        self._heaps: dict[str, list[tuple[int, int, list]]] = {
            name: [] for name in tracked
        }
        self._heap_seq = 0
        self._active_count = 0
        self._stop = 0  #: current stop ordinal (compared against _BORN)
        #: net-layer strip-above intervals retired during the current
        #: stop, by expiry or merge consumption.  Together with in-list
        #: intervals born before the stop, these reconstruct the exact
        #: strip-above view the vertical-adjacency rule needs -- without
        #: snapshotting the full active lists every strip.
        self._prev_retired: dict[str, list[tuple[int, int, int]]] = {
            name: [] for name in self._net_layers
        }
        self._ignored = {layer.cif_name for layer in tech.ignored_layers}

        self._nets = UnionFind()
        self._devs = UnionFind()
        self._net_names: dict[int, list[str]] = {}
        self._net_geo: dict[int, list[tuple[str, Box]]] = {}

        self._pending: list[tuple[int, int, str, int, int, int, int | None]] = []
        self._pending_seq = 0
        self._labels: list[PlacedLabel] = []
        self._labels_taken = 0
        self._unattached: list[PlacedLabel] = []
        self._boundary: list[tuple[Face, str, int, int, int]] = []
        self._warnings: list[str] = []
        self._unknown_layers: set[str] = set()

        #: suspension point for banded sweeps: the next stop to process
        #: (None once the event sources are exhausted) and whether the
        #: initial prime has happened.  :meth:`run` is exactly
        #: ``advance()`` to exhaustion followed by :meth:`finish`.
        self._y: int | None = None
        self._primed = False

        #: the pluggable step-2.c back-end; see docs/ENGINES.md
        self.strip_engine = create_strip_engine(engine, self)
        self.engine_name = self.strip_engine.name

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def run(self, stream: GeometryStream) -> Circuit:
        """Sweep the stream top to bottom and return the circuit."""
        self.advance(stream)
        return self.finish()

    def advance(self, stream: GeometryStream, y_limit: int | None = None) -> bool:
        """Sweep until the next stop would be at or below ``y_limit``.

        With ``y_limit=None`` the sweep runs to exhaustion.  Returns True
        while more stops remain (the sweep paused at the band boundary),
        False once every event source is drained.  The loop body is the
        exact in-memory sweep: band boundaries only ever *pause between
        natural stops*, never force one, so every counter in
        :class:`~repro.core.stats.ScanStats` and every strip handed to
        the engine is identical to an unbanded run.
        """
        timer = self.timer
        stats = self.stats
        timer.start("frontend")
        if not self._primed:
            y = stream.next_top()
            if self._pending:
                top = -self._pending[0][0]
                y = top if y is None else max(y, top)
            self._y = y
            self._primed = True
        y = self._y

        strip_engine = self.strip_engine

        while y is not None:
            if y_limit is not None and y <= y_limit:
                break
            stats.stops += 1
            self._stop += 1
            scanned_before = stats.intervals_scanned
            pops_before = stats.heap_pops
            timer.start("insert")
            self._expire(y)
            timer.start("frontend")
            new_boxes = stream.fetch(y)
            timer.start("insert")
            self._enter_continuations(y)
            for layer, box in new_boxes:
                stats.boxes_in += 1
                self._insert(
                    layer, box.xmin, box.xmax, box.ymin, None, True, box
                )
            y_next = self._next_stop(stream, y)
            overhead = (stats.intervals_scanned - scanned_before) - (
                stats.heap_pops - pops_before
            )
            if overhead > stats.max_stop_overhead:
                stats.max_stop_overhead = overhead
            if y_next is None:
                y = None
                break
            timer.start("devices")
            total_active = self._active_count
            stats.observe_active(total_active)
            if total_active:
                stats.strips += 1
            strip_engine.process_strip(y_next, y, stream)
            timer.start("frontend")
            y = y_next

        self._y = y
        return y is not None

    def finish(self) -> Circuit:
        """Close the sweep: flush consumers and fold the circuit."""
        timer = self.timer
        timer.start("output")
        for consumer in self.strip_consumers:
            consumer.finish()
        circuit = self._finalize()
        timer.stop()
        return circuit

    # ------------------------------------------------------------------
    # banded sweeps: liveness, retirement, checkpoint state
    # ------------------------------------------------------------------

    def live_net_roots(self) -> set[int]:
        """Net roots still reachable from host-side sweep state.

        A net absent from every active list and from the pending buffer
        (and from the engine's strip-above continuation state, which the
        engine reports separately) can never be unioned again: all future
        unions reach only nets visible to upcoming strips.  Its root is
        therefore final and safe to retire.  ``_prev_retired`` is
        deliberately excluded -- it is cleared by the next ``_expire``
        before anything reads it.
        """
        find = self._nets.find
        live: set[int] = set()
        for layer in self._net_layers:
            for iv in self._active[layer]:
                live.add(find(iv[_NET]))
        for entry in self._pending:
            net = entry[6]
            if net is not None:
                live.add(find(net))
        return live

    def retire_net_payload(self, dead_roots: "set[int]") -> dict[int, dict]:
        """Remove and return name/geometry payloads of dead net roots.

        Per-root values concatenate in table insertion order -- exactly
        the restriction of the finalize-time ``UnionFind.fold`` to these
        roots, so spilled payloads byte-match the in-memory fold.  Live
        entries keep their raw-id keys untouched: re-keying them could
        reorder future appends relative to an uninterrupted run.
        """
        find = self._nets.find
        out: dict[int, dict] = {}
        if self._net_names:
            keep_names: dict[int, list[str]] = {}
            for ident, names in self._net_names.items():
                root = find(ident)
                if root in dead_roots:
                    rec = out.setdefault(root, {})
                    rec.setdefault("names", []).extend(names)
                else:
                    keep_names[ident] = names
            self._net_names = keep_names
        if self._net_geo:
            keep_geo: dict[int, list[tuple[str, Box]]] = {}
            for ident, entries in self._net_geo.items():
                root = find(ident)
                if root in dead_roots:
                    rec = out.setdefault(root, {})
                    rec.setdefault("geo", []).extend(entries)
                else:
                    keep_geo[ident] = entries
            self._net_geo = keep_geo
        return out

    def snapshot_state(self) -> dict:
        """Serialize the sweep's suspension state (JSON-compatible).

        Heaps are captured *exactly*, dead entries included: a heap
        rebuilt from live intervals alone would pop and lazily discard
        different entry counts after resume, so the restored ScanStats
        would diverge from an uninterrupted run.  Live entries become
        indices into the layer's active list; dead ones keep only their
        ``(-ybot, seq)`` ordering key.
        """
        active: dict[str, list[list]] = {}
        heaps: dict[str, list[list]] = {}
        for layer in sorted(self._active):
            ivs = self._active[layer]
            pos = {id(iv): i for i, iv in enumerate(ivs)}
            active[layer] = [list(iv) for iv in ivs]
            heaps[layer] = [
                [neg_bot, seq, pos.get(id(iv))]
                for neg_bot, seq, iv in self._heaps[layer]
            ]
        return {
            "y": self._y,
            "primed": self._primed,
            "stop": self._stop,
            "heap_seq": self._heap_seq,
            "active_count": self._active_count,
            "active": active,
            "heaps": heaps,
            "versions": dict(self._versions),
            "pending": [list(entry) for entry in self._pending],
            "pending_seq": self._pending_seq,
            "labels_taken": self._labels_taken,
            "labels": [
                [lb.name, lb.x, lb.y, lb.layer] for lb in self._labels
            ],
            "unattached": [
                [lb.name, lb.x, lb.y, lb.layer] for lb in self._unattached
            ],
            "net_names": [
                [ident, list(names)]
                for ident, names in self._net_names.items()
            ],
            "net_geo": [
                [
                    ident,
                    [
                        [layer, b.xmin, b.ymin, b.xmax, b.ymax]
                        for layer, b in entries
                    ],
                ]
                for ident, entries in self._net_geo.items()
            ],
            "warnings": list(self._warnings),
            "unknown_layers": sorted(self._unknown_layers),
            "nets": self._nets.state(),
            "devs": self._devs.state(),
            "stats": self.stats.as_dict(),
            "engine": self.strip_engine.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a sweep suspended by :meth:`snapshot_state`.

        The engine must have been constructed with the same technology
        and options as the one that produced the snapshot.
        """
        self._y = state["y"]
        self._primed = bool(state["primed"])
        self._stop = int(state["stop"])
        self._heap_seq = int(state["heap_seq"])
        self._active_count = int(state["active_count"])
        for layer, rows in state["active"].items():
            ivs = [
                [row[0], row[1], row[2], row[3], bool(row[4]), row[5]]
                for row in rows
            ]
            self._active[layer] = ivs
            self._keys[layer] = [iv[_X1] for iv in ivs]
            # The serialized list order IS the heap order; rebuilding
            # entry by entry (no heapify) preserves the exact structure.
            self._heaps[layer] = [
                (
                    neg_bot,
                    seq,
                    ivs[ref]
                    if ref is not None
                    else [0, 0, -neg_bot, None, False, 0],
                )
                for neg_bot, seq, ref in state["heaps"][layer]
            ]
        self._versions.update(state["versions"])
        self._pending = [
            (e[0], e[1], e[2], e[3], e[4], e[5], e[6])
            for e in state["pending"]
        ]
        self._pending_seq = int(state["pending_seq"])
        self._labels_taken = int(state["labels_taken"])
        self._labels = [
            PlacedLabel(name, x, y, layer)
            for name, x, y, layer in state["labels"]
        ]
        self._unattached = [
            PlacedLabel(name, x, y, layer)
            for name, x, y, layer in state["unattached"]
        ]
        self._net_names = {
            int(ident): list(names) for ident, names in state["net_names"]
        }
        self._net_geo = {
            int(ident): [
                (layer, Box(x1, y1, x2, y2))
                for layer, x1, y1, x2, y2 in entries
            ]
            for ident, entries in state["net_geo"]
        }
        self._warnings = list(state["warnings"])
        self._unknown_layers = set(state["unknown_layers"])
        self._nets.restore(state["nets"])
        self._devs.restore(state["devs"])
        self.stats.restore(state["stats"])
        self.strip_engine.restore_state(state["engine"])

    def _next_stop(self, stream: GeometryStream, y: int) -> int | None:
        """Step 2.d as a heap peek: O(#layers) plus lazy-dead cleanup."""
        stats = self.stats
        best = stream.next_top()
        if self._pending:
            top = -self._pending[0][0]
            if best is None or top > best:
                best = top
        for heap in self._heaps.values():
            while heap:
                stats.intervals_scanned += 1
                neg_bot, _, iv = heap[0]
                if iv[_LIVE]:
                    bot = -neg_bot
                    if best is None or bot > best:
                        best = bot
                    break
                heapq.heappop(heap)
                stats.heap_pops += 1
                stats.lazy_discards += 1
        if best is None:
            return None
        if best >= y:  # pragma: no cover - sweep invariant
            raise AssertionError(f"scanline failed to advance: {best} >= {y}")
        return best

    # ------------------------------------------------------------------
    # active-list maintenance (steps 2.a / 2.b)
    # ------------------------------------------------------------------

    def _expire(self, y: int) -> None:
        """Pop the intervals whose bottom edge coincides with the scanline.

        Only heap entries that actually retire (expiring intervals plus
        lazily invalidated leftovers of earlier merges) are popped; one
        extra peek per non-empty layer detects that nothing more ends
        here.  Net-layer expiries are recorded in ``_prev_retired`` for
        the stop's duration, feeding the vertical-adjacency rule in
        :meth:`_insert`.
        """
        stats = self.stats
        retired = self._prev_retired
        for layer in retired:
            if retired[layer]:
                retired[layer] = []
        for layer, heap in self._heaps.items():
            if not heap:
                continue
            retired_here = retired.get(layer)
            while heap:
                stats.intervals_scanned += 1
                neg_bot, _, iv = heap[0]
                if iv[_LIVE] and -neg_bot != y:
                    break
                heapq.heappop(heap)
                stats.heap_pops += 1
                if not iv[_LIVE]:
                    stats.lazy_discards += 1
                    continue
                stats.expired += 1
                iv[_LIVE] = False
                intervals = self._active[layer]
                keys = self._keys[layer]
                # Live intervals are disjoint, so x1 is unique: bisect
                # lands exactly on the retiring interval.
                i = bisect_left(keys, iv[_X1])
                del intervals[i]
                del keys[i]
                self._versions[layer] += 1
                self._active_count -= 1
                if retired_here is not None:
                    retired_here.append((iv[_X1], iv[_X2], iv[_NET]))

    def _enter_continuations(self, y: int) -> None:
        """Re-insert buffered lower portions whose top is the scanline."""
        pending = self._pending
        while pending and -pending[0][0] == y:
            _, _, layer, x1, x2, ybot, net = heapq.heappop(pending)
            self._insert(layer, x1, x2, ybot, net, False, None)

    def _insert(
        self,
        layer: str,
        x1: int,
        x2: int,
        ybot: int,
        net: int | None,
        fresh: bool,
        box: Box | None,
    ) -> None:
        """Merge one box (or continuation) into a layer's active list.

        ``net`` is None for fresh geometry (a net is allocated on demand
        for net-carrying layers) and pre-bound for continuations.  ``box``
        is the original artwork box for geometry/location bookkeeping and
        None for continuations, whose upper part was already recorded.
        ``fresh`` geometry additionally joins, by vertical adjacency, the
        nets of strip-above intervals that retired at this very stop;
        adjacency to intervals that continue below is the ordinary merge.
        """
        intervals = self._active.get(layer)
        if intervals is None:
            if layer not in self._ignored and layer not in self._unknown_layers:
                self._unknown_layers.add(layer)
                self._warnings.append(f"ignoring geometry on unknown layer {layer}")
            return
        keys = self._keys[layer]
        carries_net = layer in self._net_layers

        if carries_net:
            if net is None:
                net = self._nets.make()
                self.stats.nets_created += 1
            if fresh:
                # Vertical adjacency: new geometry starting exactly where
                # the strip above ended joins the nets above it.  The
                # strip-above view is reconstructed from two event-bounded
                # sources: intervals retired during this stop (expiry or
                # merge consumption) and in-list survivors born before
                # this stop.  Union order follows ascending x1, exactly
                # as a full strip snapshot would.
                cands: list[tuple[int, int]] | None = None
                retired = self._prev_retired[layer]
                if retired:
                    cands = [
                        (px1, pnet)
                        for px1, px2, pnet in retired
                        if px2 > x1 and px1 < x2
                    ]
                i = bisect_left(keys, x1)
                if i > 0 and intervals[i - 1][_X2] > x1:
                    i -= 1
                n_intervals = len(intervals)
                born_limit = self._stop
                while i < n_intervals:
                    iv = intervals[i]
                    if iv[_X1] >= x2:
                        break
                    if iv[_BORN] < born_limit and iv[_X2] > x1:
                        if cands is None:
                            cands = []
                        cands.append((iv[_X1], iv[_NET]))
                    i += 1
                if cands:
                    cands.sort()
                    for _, pnet in cands:
                        net = self._nets.union(net, pnet)
            if box is not None:
                self.strip_engine.touch_net(net, box.xmin, box.ymax)
                if self.keep_geometry:
                    self._net_geo.setdefault(net, []).append((layer, box))
        else:
            net = None

        # Locate the run of intervals that overlap or abut [x1, x2].
        lo = bisect_left(keys, x1)
        if lo > 0 and intervals[lo - 1][_X2] >= x1:
            lo -= 1
        hi = bisect_right(keys, x2, lo=lo)
        if lo == hi:
            interval = [x1, x2, ybot, net, True, self._stop]
            intervals.insert(lo, interval)
            keys.insert(lo, x1)
            self._versions[layer] += 1
            self._active_count += 1
            self._schedule(layer, interval)
            return

        # Merge the new box with intervals[lo:hi] (step 2.b).  The merged
        # interval lives until the *earliest* bottom; the deeper remainder
        # of every taller piece re-enters from the pending buffer.  The
        # consumed pieces are lazily invalidated: their heap entries stay
        # queued, flagged dead, and are dropped when they surface.
        self.stats.merges += 1
        pieces = intervals[lo:hi]
        new_x1 = min(x1, pieces[0][_X1])
        new_x2 = max(x2, pieces[-1][_X2])
        max_bot = ybot
        for piece in pieces:
            if piece[_YBOT] > max_bot:
                max_bot = piece[_YBOT]
            if carries_net:
                net = self._nets.union(net, piece[_NET])
        stop = self._stop
        retired = self._prev_retired.get(layer) if carries_net else None
        for piece in pieces:
            piece[_LIVE] = False
            if retired is not None and piece[_BORN] < stop:
                # A consumed strip-above interval stays visible to later
                # same-stop vertical-adjacency checks.
                retired.append((piece[_X1], piece[_X2], piece[_NET]))
            if piece[_YBOT] < max_bot:
                self._push_pending(
                    layer, piece[_X1], piece[_X2], max_bot, piece[_YBOT], net
                )
        if ybot < max_bot:
            self._push_pending(layer, x1, x2, max_bot, ybot, net)
        merged = [new_x1, new_x2, max_bot, net, True, stop]
        intervals[lo:hi] = [merged]
        keys[lo:hi] = [new_x1]
        self._versions[layer] += 1
        self._active_count += 1 - len(pieces)
        self._schedule(layer, merged)

    def _schedule(self, layer: str, interval: list) -> None:
        """Register an interval's bottom edge on its layer's event heap."""
        self._heap_seq += 1
        heapq.heappush(
            self._heaps[layer], (-interval[_YBOT], self._heap_seq, interval)
        )
        self.stats.heap_pushes += 1

    def _push_pending(
        self, layer: str, x1: int, x2: int, top: int, ybot: int, net: int | None
    ) -> None:
        self.stats.splits += 1
        self._pending_seq += 1
        heapq.heappush(
            self._pending, (-top, self._pending_seq, layer, x1, x2, ybot, net)
        )

    # ------------------------------------------------------------------
    # strip consumers
    # ------------------------------------------------------------------

    def _feed_consumers(
        self,
        y_lo: int,
        y_hi: int,
        channels: list[tuple[int, int, int]],
    ) -> None:
        """Hand the strip's spans to every attached consumer."""
        spans = {
            layer: [(iv[_X1], iv[_X2]) for iv in ivs]
            for layer, ivs in self._active.items()
        }
        for consumer in self.strip_consumers:
            consumer.observe_strip(y_lo, y_hi, spans, channels)

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------

    def _attach_labels(
        self,
        y_lo: int,
        y_hi: int,
        stream: GeometryStream,
        cond_source: CondSource,
    ) -> None:
        """Bind labels that fall inside the strip to their nets.

        ``cond_source`` lazily materializes the strip's conducting
        diffusion spans ``(x1, x2, net)``; batch engines only pay for
        the list when a label actually lands in the strip.
        """
        fresh = stream.labels()
        if len(fresh) > self._labels_taken:
            self._labels.extend(fresh[self._labels_taken :])
            self._labels_taken = len(fresh)
        if not self._labels:
            return
        remaining: list[PlacedLabel] = []
        cond: list[tuple[int, int, int]] | None = None
        cond_starts: list[int] | None = None
        for label in self._labels:
            if label.y > y_hi:
                self._unattached.append(label)
            elif label.y < y_lo:
                remaining.append(label)
            else:
                if cond_starts is None or cond is None:
                    cond = cond_source()
                    cond_starts = [span[0] for span in cond]
                net = self._net_at_point(label, cond, cond_starts)
                if net is None:
                    self._unattached.append(label)
                else:
                    self._net_names.setdefault(net, []).append(label.name)
        self._labels = remaining

    def _net_at_point(
        self,
        label: PlacedLabel,
        cond: list[tuple[int, int, int]],
        cond_starts: list[int],
    ) -> int | None:
        layers: tuple[str, ...]
        if label.layer:
            layers = (label.layer,)
        else:
            layers = (self._metal, self._poly, self._diff)
        x = label.x
        for layer in layers:
            if layer == self._diff:
                i = bisect_right(cond_starts, x) - 1
                if i >= 0 and cond[i][1] >= x:
                    return cond[i][2]
            elif layer in self._net_layers:
                keys = self._keys[layer]
                i = bisect_right(keys, x) - 1
                if i >= 0:
                    iv = self._active[layer][i]
                    if iv[_X2] >= x:
                        return iv[_NET]
        return None

    # ------------------------------------------------------------------
    # window boundary capture (HEXT's modified ACE)
    # ------------------------------------------------------------------

    def _capture_boundary(
        self,
        y_lo: int,
        y_hi: int,
        cond: list[tuple[int, int, int]],
        strip_channels: list[tuple[int, int, int]],
    ) -> None:
        window = self.window
        assert window is not None
        records = self._boundary
        wx1, wx2 = window.xmin, window.xmax

        # Active intervals are disjoint with strictly increasing x1 and
        # x2, so at most one interval per layer can start on the left
        # window edge (and one end on the right): bisect to the two
        # candidates instead of scanning the whole list every strip.
        for layer in self._net_layers:
            intervals = self._active[layer]
            if not intervals:
                continue
            keys = self._keys[layer]
            i = bisect_left(keys, wx1)
            if i < len(keys) and keys[i] == wx1:
                records.append(
                    (Face.LEFT, layer, y_lo, y_hi, intervals[i][_NET])
                )
            j = bisect_right(keys, wx2) - 1
            if j >= 0 and intervals[j][_X2] == wx2:
                records.append(
                    (Face.RIGHT, layer, y_lo, y_hi, intervals[j][_NET])
                )
        for x1, x2, net in cond:
            if x1 == wx1:
                records.append((Face.LEFT, self._diff, y_lo, y_hi, net))
            if x2 == wx2:
                records.append((Face.RIGHT, self._diff, y_lo, y_hi, net))
        for x1, x2, dev in strip_channels:
            if x1 == wx1:
                records.append((Face.LEFT, CHANNEL, y_lo, y_hi, dev))
            if x2 == wx2:
                records.append((Face.RIGHT, CHANNEL, y_lo, y_hi, dev))

        if y_hi == window.ymax:
            for layer in self._net_layers:
                for iv in self._active[layer]:
                    records.append(
                        (Face.TOP, layer, iv[_X1], iv[_X2], iv[_NET])
                    )
            for x1, x2, net in cond:
                records.append((Face.TOP, self._diff, x1, x2, net))
            for x1, x2, dev in strip_channels:
                records.append((Face.TOP, CHANNEL, x1, x2, dev))
        if y_lo == window.ymin:
            for layer in self._net_layers:
                for iv in self._active[layer]:
                    records.append(
                        (Face.BOTTOM, layer, iv[_X1], iv[_X2], iv[_NET])
                    )
            for x1, x2, net in cond:
                records.append((Face.BOTTOM, self._diff, x1, x2, net))
            for x1, x2, dev in strip_channels:
                records.append((Face.BOTTOM, CHANNEL, x1, x2, dev))

    # ------------------------------------------------------------------
    # finalize (step 3)
    # ------------------------------------------------------------------

    def _finalize(self) -> Circuit:
        from itertools import repeat

        from .netlist import Net

        nets = self._nets
        for label in self._labels:  # below all geometry
            self._unattached.append(label)
        self._labels = []

        names = nets.fold(self._net_names)
        geometry = nets.fold(self._net_geo) if self.keep_geometry else {}

        # The engine owns the location folds: canonical net order is
        # topmost, then leftmost, location first.
        roots, locations = self.strip_engine.net_order()
        index_of = dict(zip(roots, range(1, len(roots) + 1)))

        # Net materialization runs once per net (66k times on the n=256
        # mesh), so the unlabeled/no-geometry bulk goes through C-level
        # map/zip construction; only nets with names or kept geometry
        # take the per-root python path.
        if not names and not geometry:
            net_objs = list(
                map(
                    Net,
                    range(1, len(roots) + 1),
                    map(list, repeat((), len(roots))),
                    locations,
                    map(list, repeat((), len(roots))),
                )
            )
        else:
            net_objs = []
            append_net = net_objs.append
            get_names = names.get
            get_geo = geometry.get
            for i, root in enumerate(roots):
                raw = get_names(root)
                if raw:
                    seen: set[str] = set()
                    uniq = [
                        n for n in raw if not (n in seen or seen.add(n))
                    ]
                else:
                    uniq = []
                append_net(
                    Net(i + 1, uniq, locations[i], get_geo(root) or [])
                )

        boundary_devs = {
            ident
            for _, layer, _, _, ident in self._boundary
            if layer == CHANNEL
        }
        boundary_dev_roots = {self._devs.find(d) for d in boundary_devs}

        warnings = list(self._warnings)
        kind_enh = self.tech.device_name(False)
        kind_dep = self.tech.device_name(True)
        devices, dev_index_of, dev_warnings = (
            self.strip_engine.build_devices(
                index_of, kind_enh, kind_dep, boundary_dev_roots
            )
        )
        warnings.extend(dev_warnings)

        for label in self._unattached:
            warnings.append(
                f"label {label.name!r} at ({label.x}, {label.y}) "
                f"matches no conducting geometry"
            )

        boundary = []
        for face, layer, lo, hi, ident in self._boundary:
            if layer == CHANNEL:
                mapped = dev_index_of.get(self._devs.find(ident))
            else:
                mapped = index_of.get(nets.find(ident))
            if mapped is not None:
                boundary.append(BoundaryRecord(face, layer, lo, hi, mapped))

        return Circuit(
            nets=net_objs,
            devices=devices,
            boundary=_coalesce_boundary(boundary),
            warnings=warnings,
        )


# ----------------------------------------------------------------------
# span helpers (disjoint sorted span lists, single merged sweeps)
# ----------------------------------------------------------------------


def _intersect_intervals(
    spans: list[list], intervals: list[list]
) -> list[tuple[int, int, int]]:
    """Intersect two sorted interval lists, keeping the second's nets."""
    out: list[tuple[int, int, int]] = []
    i = j = 0
    n_spans, n_intervals = len(spans), len(intervals)
    while i < n_spans and j < n_intervals:
        a = spans[i]
        b = intervals[j]
        lo = a[_X1] if a[_X1] > b[_X1] else b[_X1]
        hi = a[_X2] if a[_X2] < b[_X2] else b[_X2]
        if lo < hi:
            out.append((lo, hi, b[_NET]))
        if a[_X2] <= b[_X2]:
            i += 1
        else:
            j += 1
    return out


def _subtract_channels(
    segments: list[tuple[int, int, int]], holes: list[list]
) -> list[tuple[int, int, int]]:
    """Channel segments minus hole intervals, keeping each gate net."""
    out: list[tuple[int, int, int]] = []
    hj = 0
    n_holes = len(holes)
    for x1, x2, pnet in segments:
        pos = x1
        while hj < n_holes and holes[hj][_X2] <= pos:
            hj += 1
        j = hj
        while j < n_holes:
            hole = holes[j]
            if hole[_X1] >= x2:
                break
            if hole[_X1] > pos:
                out.append((pos, hole[_X1], pnet))
            if hole[_X2] > pos:
                pos = hole[_X2]
            if pos >= x2:
                break
            j += 1
        if pos < x2:
            out.append((pos, x2, pnet))
    return out


def _subtract_diff(
    spans: list[list], holes: list[tuple[int, int, int]]
) -> list[tuple[int, int]]:
    """Diffusion intervals minus channel spans; all inputs sorted."""
    out: list[tuple[int, int]] = []
    hj = 0
    n_holes = len(holes)
    for iv in spans:
        lo, hi = iv[_X1], iv[_X2]
        pos = lo
        while hj < n_holes and holes[hj][1] <= pos:
            hj += 1
        j = hj
        while j < n_holes:
            hlo, hhi = holes[j][0], holes[j][1]
            if hlo >= hi:
                break
            if hlo > pos:
                out.append((pos, hlo))
            if hhi > pos:
                pos = hhi
            if pos >= hi:
                break
            j += 1
        if pos < hi:
            out.append((pos, hi))
    return out


def _coalesce_boundary(records: list[BoundaryRecord]) -> list[BoundaryRecord]:
    """Join per-strip boundary records that continue one another."""
    records.sort(key=lambda r: (r.face.value, r.layer, r.ident, r.lo))
    out: list[BoundaryRecord] = []
    for rec in records:
        prev = out[-1] if out else None
        if (
            prev is not None
            and prev.face == rec.face
            and prev.layer == rec.layer
            and prev.ident == rec.ident
            and prev.hi >= rec.lo
        ):
            if rec.hi > prev.hi:
                out[-1] = BoundaryRecord(
                    prev.face, prev.layer, prev.lo, rec.hi, prev.ident
                )
        else:
            out.append(rec)
    return out
