"""The edge-based scanline back-end (section 3 of the paper).

A scanline moves from the top of the chip to the bottom, pausing only at
box top/bottom edges.  Between consecutive stops the layer state is
constant -- a *strip*.  Per layer, an *active list* of disjoint, sorted
x-intervals describes the strip; nets live in a union-find.

The implementation follows Figure 3-2 step for step:

  2.a  incoming geometry is sorted by x into per-layer newGeometry lists
       (here: delivered sorted by the stream, inserted one by one);
  2.b  new boxes merge into the active lists; overlapping or abutting
       boxes on one layer union their nets; when merged boxes have
       unequal bottoms, the deeper remainder is split off into a pending
       buffer and re-enters when the scanline reaches its top;
  2.c  devices: per strip, channel = diffusion AND poly AND NOT buried;
       conducting diffusion = diffusion - channel; channels are tracked
       exactly like nets (a union-find of device ids) and accumulate
       area, gate nets, and terminal contact perimeter;
  2.d  next stop = max over upcoming box tops and active bottoms.

Event scheduling is heap-based so a stop costs work proportional to the
events at that stop, not to the number of active intervals: every active
interval is registered on a per-layer bottom-edge heap when created, and
an interval consumed by a merge is *lazily invalidated* -- its heap entry
stays behind, marked dead, and is discarded when it surfaces.  Step 2.d
is then a constant number of heap peeks and step "expire" pops exactly
the intervals whose bottom edge is the current stop.  The design notes
and invariants live in docs/SCANLINE_PERF.md.

Active intervals live in per-layer *columnar* tables
(:class:`~repro.core.columnar.LayerTable`): persistent int64 columns
plus a live mask, updated incrementally on insert/expire.  The numpy
strip engine gathers a layer's live rows straight from the columns
(zero-copy buffer views) instead of re-materializing python lists every
strip, and the stable row ids with their ``born``/``died`` stop stamps
let the host *batch* stop handling: a run of consecutive stops that
only expires/inserts -- no union-find side effects, no labels, no
boundary capture, no consumers -- is deferred and handed to the engine
as one vectorized strip run (:meth:`StripEngine.process_run`).  The
deferral rules that keep this byte-identical to stop-by-stop processing
are documented in docs/ENGINES.md.

In *window mode* (HEXT's modified ACE) the engine also records every
conducting span and channel span that touches the window boundary; those
records become the window's interface.

The per-strip *value* computation (step 2.c and the finalize folds) is
delegated to a pluggable :class:`~repro.core.stripengine.StripEngine`:
the pure-python reference back-end or, when numpy is importable, a
vectorized strip-batch back-end.  Both produce byte-identical wirelists;
docs/ENGINES.md documents the split and the parity contract.

Pass ``profile=True`` (CLI: ``--profile``) to accumulate wall-clock
seconds per host phase -- ``schedule`` / ``expire`` / ``insert`` /
``strip`` / ``finalize`` -- into :attr:`ScanStats.profile`.
"""

from __future__ import annotations

import heapq
import time
from bisect import bisect_left, bisect_right

from ..frontend.instantiate import PlacedLabel
from ..frontend.stream import GeometryStream
from ..geometry import Box
from ..tech import Technology, scan_layers
from .columnar import NO_NET, LayerTable
from .netlist import CHANNEL, BoundaryRecord, Circuit, Face
from .stats import PhaseTimer, ScanStats
from .stripengine import CondSource, create_strip_engine
from .unionfind import UnionFind

#: Host profiler phase keys (``ScanStats.profile``).
PROFILE_PHASES = ("schedule", "expire", "insert", "strip", "finalize")

#: Deliberately broken scanline rules, set only by the differential
#: harness's fault-injection self-test (:mod:`repro.difftest.faults`).
#: Always empty in normal operation.  Each name disables exactly one
#: connectivity rule in the strip engines' strip processing (both
#: back-ends honour the same names) so the harness can prove it detects
#: and shrinks a real extractor bug.
FAULTS: frozenset[str] = frozenset()


class StripConsumer:
    """A second consumer of the scanline strip decomposition.

    The engine already pays for the per-layer active lists; a consumer
    rides the same sweep instead of re-sorting the geometry stream.
    :meth:`observe_strip` is called once per strip, top to bottom, with
    contiguous ``[y_lo, y_hi)`` bands, ``spans`` holding each tracked
    layer's disjoint sorted ``(x1, x2)`` intervals for the strip, and
    ``channels`` the strip's transistor-channel spans ``(x1, x2, net)``
    (diffusion AND poly AND NOT buried).  :meth:`finish` is called once
    after the sweep ends.  The design-rule checker
    (:class:`repro.drc.checker.DrcChecker`) is the canonical
    implementation.
    """

    def observe_strip(
        self,
        y_lo: int,
        y_hi: int,
        spans: dict[str, list[tuple[int, int]]],
        channels: list[tuple[int, int, int]],
    ) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def finish(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class ScanlineEngine:
    """One extraction run over a geometry stream."""

    def __init__(
        self,
        tech: Technology,
        *,
        keep_geometry: bool = False,
        window: Box | None = None,
        timer: PhaseTimer | None = None,
        strip_consumers: "tuple[StripConsumer, ...]" = (),
        engine: str = "auto",
        profile: bool = False,
    ) -> None:
        self.tech = tech
        self.keep_geometry = keep_geometry
        self.window = window
        self.timer = timer or PhaseTimer()
        self.stats = ScanStats()
        self.strip_consumers = tuple(strip_consumers)

        #: per-phase wall clock, shared with ``stats.profile`` so the
        #: bench and /metrics read it straight off the counters object
        self._profile: dict[str, float] | None = (
            {phase: 0.0 for phase in PROFILE_PHASES} if profile else None
        )
        self.stats.profile = self._profile
        #: seconds spent inside :meth:`_flush_run` since construction;
        #: phase sections subtract their delta so a flush fired from
        #: within expire/insert bills to "strip", not the host phase
        self._flush_spent = 0.0

        roles = scan_layers(tech)
        self._metal = roles.metal
        self._poly = roles.poly
        self._diff = roles.diff
        self._contact = roles.contact
        self._implant = roles.marker
        self._buried = roles.buried
        #: layers whose active intervals carry net ids directly
        self._net_layers = roles.net_layers
        tracked = roles.tracked()
        #: per-layer columnar active-interval tables (docs/ENGINES.md)
        self._tables: dict[str, LayerTable] = {
            name: LayerTable() for name in tracked
        }
        #: per-layer bottom-edge event heaps of (-ybot, seq, row id)
        self._heaps: dict[str, list[tuple[int, int, int]]] = {
            name: [] for name in tracked
        }
        self._heap_seq = 0
        self._active_count = 0
        self._stop = 0  #: current stop ordinal (compared against born)
        #: net-layer strip-above intervals retired during the current
        #: stop, by expiry or merge consumption.  Together with in-list
        #: intervals born before the stop, these reconstruct the exact
        #: strip-above view the vertical-adjacency rule needs -- without
        #: snapshotting the full active lists every strip.
        self._prev_retired: dict[str, list[tuple[int, int, int]]] = {
            name: [] for name in self._net_layers
        }
        self._ignored = set(roles.ignored)

        self._nets = UnionFind()
        self._devs = UnionFind()
        self._net_names: dict[int, list[str]] = {}
        self._net_geo: dict[int, list[tuple[str, Box]]] = {}

        self._pending: list[tuple[int, int, str, int, int, int, int | None]] = []
        self._pending_seq = 0
        self._labels: list[PlacedLabel] = []
        self._labels_taken = 0
        self._unattached: list[PlacedLabel] = []
        self._boundary: list[tuple[Face, str, int, int, int]] = []
        self._warnings: list[str] = []
        self._unknown_layers: set[str] = set()

        #: suspension point for banded sweeps: the next stop to process
        #: (None once the event sources are exhausted) and whether the
        #: initial prime has happened.  :meth:`run` is exactly
        #: ``advance()`` to exhaustion followed by :meth:`finish`.
        self._y: int | None = None
        self._primed = False

        #: deferred strip run: ``(y_lo, y_hi)`` per consecutive stop,
        #: the diff rows live when the run opened, and the diff row
        #: count at that moment (rows allocated during the run are
        #: ``born_start..``).  Flushed through
        #: :meth:`StripEngine.process_run` before anything that could
        #: observe or reorder union-find state.
        self._run_strips: list[tuple[int, int]] = []
        self._run_stop0 = 0
        self._run_diff_rows: list[int] = []
        self._run_born_start = 0
        #: diff active count of the most recent strip (processed or
        #: deferred); a strip may join a run only when it or its
        #: predecessor has no diffusion, so run strips never bind
        #: vertically to one another.
        self._last_strip_diff = 0

        #: the pluggable step-2.c back-end; see docs/ENGINES.md
        self.strip_engine = create_strip_engine(engine, self)
        self.engine_name = self.strip_engine.name
        #: strip runs require a run-capable engine and none of the
        #: per-strip side channels (geometry replay, window boundary
        #: capture, strip consumers)
        self._batch_ok = (
            self.strip_engine.supports_runs
            and not keep_geometry
            and window is None
            and not self.strip_consumers
        )

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def run(self, stream: GeometryStream) -> Circuit:
        """Sweep the stream top to bottom and return the circuit."""
        self.advance(stream)
        return self.finish()

    def advance(self, stream: GeometryStream, y_limit: int | None = None) -> bool:
        """Sweep until the next stop would be at or below ``y_limit``.

        With ``y_limit=None`` the sweep runs to exhaustion.  Returns True
        while more stops remain (the sweep paused at the band boundary),
        False once every event source is drained.  The loop body is the
        exact in-memory sweep: band boundaries only ever *pause between
        natural stops*, never force one, so every counter in
        :class:`~repro.core.stats.ScanStats` and every strip handed to
        the engine is identical to an unbanded run.  Any open strip run
        is flushed before the method returns, so suspension state never
        contains deferred strips.
        """
        timer = self.timer
        stats = self.stats
        prof = self._profile
        perf = time.perf_counter
        timer.start("frontend")
        if not self._primed:
            y = stream.next_top()
            if self._pending:
                top = -self._pending[0][0]
                y = top if y is None else max(y, top)
            self._y = y
            self._primed = True
        y = self._y

        strip_engine = self.strip_engine
        batch_ok = self._batch_ok
        net_layers = self._net_layers
        diff_order = self._tables[self._diff].order
        contact_order = self._tables[self._contact].order
        buried_order = self._tables[self._buried].order
        implant_order = self._tables[self._implant].order

        while y is not None:
            if y_limit is not None and y <= y_limit:
                break
            stats.stops += 1
            self._stop += 1
            scanned_before = stats.intervals_scanned
            pops_before = stats.heap_pops
            timer.start("insert")
            if prof is None:
                self._expire(y)
            else:
                fs = self._flush_spent
                t0 = perf()
                self._expire(y)
                prof["expire"] += perf() - t0 - (self._flush_spent - fs)
            timer.start("frontend")
            new_boxes = stream.fetch(y)
            timer.start("insert")
            if self._run_strips and (
                (self._pending and -self._pending[0][0] == y)
                or any(layer in net_layers for layer, _ in new_boxes)
            ):
                # A net-layer insert or a re-entering continuation can
                # make or union nets; the run's deferred batch allocations
                # must land first so union-find id order matches the
                # stop-by-stop sequence exactly.
                self._flush_run()
            if prof is None:
                self._enter_continuations(y)
                for layer, box in new_boxes:
                    stats.boxes_in += 1
                    self._insert(
                        layer, box.xmin, box.xmax, box.ymin, None, True, box
                    )
            else:
                t0 = perf()
                self._enter_continuations(y)
                for layer, box in new_boxes:
                    stats.boxes_in += 1
                    self._insert(
                        layer, box.xmin, box.xmax, box.ymin, None, True, box
                    )
                prof["insert"] += perf() - t0
            if prof is None:
                y_next = self._next_stop(stream, y)
            else:
                t0 = perf()
                y_next = self._next_stop(stream, y)
                prof["schedule"] += perf() - t0
            overhead = (stats.intervals_scanned - scanned_before) - (
                stats.heap_pops - pops_before
            )
            if overhead > stats.max_stop_overhead:
                stats.max_stop_overhead = overhead
            if y_next is None:
                y = None
                break
            timer.start("devices")
            total_active = self._active_count
            stats.observe_active(total_active)
            if total_active:
                stats.strips += 1
            if (
                batch_ok
                and not self._labels
                and not contact_order
                and not buried_order
                and not implant_order
                and (self._last_strip_diff == 0 or not diff_order)
                and len(stream.labels()) == self._labels_taken
            ):
                # Defer the strip: no label can land in it, nothing on
                # the contact/buried/implant layers, and it never binds
                # vertically to the previous strip.  The engine replays
                # the whole run from the diff rows' born/died stamps.
                if not self._run_strips:
                    self._run_stop0 = self._stop
                    self._run_diff_rows = list(diff_order)
                    self._run_born_start = self._tables[self._diff].rows()
                self._run_strips.append((y_next, y))
            else:
                if self._run_strips:
                    self._flush_run()
                if prof is None:
                    strip_engine.process_strip(y_next, y, stream)
                else:
                    t0 = perf()
                    strip_engine.process_strip(y_next, y, stream)
                    prof["strip"] += perf() - t0
            self._last_strip_diff = len(diff_order)
            timer.start("frontend")
            y = y_next

        if self._run_strips:
            self._flush_run()
        self._y = y
        return y is not None

    def finish(self) -> Circuit:
        """Close the sweep: flush consumers and fold the circuit."""
        timer = self.timer
        timer.start("output")
        if self._run_strips:  # pragma: no cover - advance always flushes
            self._flush_run()
        prof = self._profile
        if prof is None:
            for consumer in self.strip_consumers:
                consumer.finish()
            circuit = self._finalize()
        else:
            t0 = time.perf_counter()
            for consumer in self.strip_consumers:
                consumer.finish()
            circuit = self._finalize()
            prof["finalize"] += time.perf_counter() - t0
        timer.stop()
        return circuit

    def _flush_run(self) -> None:
        """Hand the deferred strip run to the engine in one call.

        Billed to the ``devices`` timer phase (and the profiler's
        ``strip`` bucket) regardless of which host phase triggered the
        flush; the triggering phase subtracts the time via
        ``_flush_spent``.
        """
        strips = self._run_strips
        if not strips:
            return
        timer = self.timer
        prev = timer._active
        timer.start("devices")
        prof = self._profile
        if prof is None:
            self.strip_engine.process_run(
                self._run_stop0,
                strips,
                self._run_diff_rows,
                self._run_born_start,
            )
        else:
            t0 = time.perf_counter()
            self.strip_engine.process_run(
                self._run_stop0,
                strips,
                self._run_diff_rows,
                self._run_born_start,
            )
            dt = time.perf_counter() - t0
            prof["strip"] += dt
            self._flush_spent += dt
        self._run_strips = []
        self._run_diff_rows = []
        if prev is not None and prev != "devices":
            timer.start(prev)

    # ------------------------------------------------------------------
    # banded sweeps: liveness, retirement, checkpoint state
    # ------------------------------------------------------------------

    def live_net_roots(self) -> set[int]:
        """Net roots still reachable from host-side sweep state.

        A net absent from every active list and from the pending buffer
        (and from the engine's strip-above continuation state, which the
        engine reports separately) can never be unioned again: all future
        unions reach only nets visible to upcoming strips.  Its root is
        therefore final and safe to retire.  ``_prev_retired`` is
        deliberately excluded -- it is cleared by the next ``_expire``
        before anything reads it.
        """
        find = self._nets.find
        live: set[int] = set()
        for layer in self._net_layers:
            t = self._tables[layer]
            net = t.net
            for rid in t.order:
                live.add(find(net[rid]))
        for entry in self._pending:
            net_id = entry[6]
            if net_id is not None:
                live.add(find(net_id))
        return live

    def retire_net_payload(self, dead_roots: "set[int]") -> dict[int, dict]:
        """Remove and return name/geometry payloads of dead net roots.

        Per-root values concatenate in table insertion order -- exactly
        the restriction of the finalize-time ``UnionFind.fold`` to these
        roots, so spilled payloads byte-match the in-memory fold.  Live
        entries keep their raw-id keys untouched: re-keying them could
        reorder future appends relative to an uninterrupted run.
        """
        find = self._nets.find
        out: dict[int, dict] = {}
        if self._net_names:
            keep_names: dict[int, list[str]] = {}
            for ident, names in self._net_names.items():
                root = find(ident)
                if root in dead_roots:
                    rec = out.setdefault(root, {})
                    rec.setdefault("names", []).extend(names)
                else:
                    keep_names[ident] = names
            self._net_names = keep_names
        if self._net_geo:
            keep_geo: dict[int, list[tuple[str, Box]]] = {}
            for ident, entries in self._net_geo.items():
                root = find(ident)
                if root in dead_roots:
                    rec = out.setdefault(root, {})
                    rec.setdefault("geo", []).extend(entries)
                else:
                    keep_geo[ident] = entries
            self._net_geo = keep_geo
        return out

    def snapshot_state(self) -> dict:
        """Serialize the sweep's suspension state (JSON-compatible).

        Heaps are captured *exactly*, dead entries included: a heap
        rebuilt from live intervals alone would pop and lazily discard
        different entry counts after resume, so the restored ScanStats
        would diverge from an uninterrupted run.  Live entries become
        indices into the layer's live row order; dead ones keep only
        their ``(-ybot, seq)`` ordering key.  Columnar tables serialize
        as the same per-interval row schema the list-record host used
        (``[x1, x2, ybot, net, live, born]`` with ``net`` None on
        non-net layers), so checkpoints round-trip losslessly.
        """
        if self._run_strips:  # pragma: no cover - advance always flushes
            self._flush_run()
        active: dict[str, list[list]] = {}
        heaps: dict[str, list[list]] = {}
        for layer in sorted(self._tables):
            t = self._tables[layer]
            carries_net = layer in self._net_layers
            x1, x2, ybot, net, born = t.x1, t.x2, t.ybot, t.net, t.born
            active[layer] = [
                [
                    x1[rid],
                    x2[rid],
                    ybot[rid],
                    net[rid] if carries_net else None,
                    True,
                    born[rid],
                ]
                for rid in t.order
            ]
            pos = {rid: i for i, rid in enumerate(t.order)}
            heaps[layer] = [
                [neg_bot, seq, pos.get(rid)]
                for neg_bot, seq, rid in self._heaps[layer]
            ]
        return {
            "y": self._y,
            "primed": self._primed,
            "stop": self._stop,
            "heap_seq": self._heap_seq,
            "active_count": self._active_count,
            "active": active,
            "heaps": heaps,
            "versions": {
                layer: self._tables[layer].version
                for layer in sorted(self._tables)
            },
            "last_strip_diff": self._last_strip_diff,
            "pending": [list(entry) for entry in self._pending],
            "pending_seq": self._pending_seq,
            "labels_taken": self._labels_taken,
            "labels": [
                [lb.name, lb.x, lb.y, lb.layer] for lb in self._labels
            ],
            "unattached": [
                [lb.name, lb.x, lb.y, lb.layer] for lb in self._unattached
            ],
            "net_names": [
                [ident, list(names)]
                for ident, names in self._net_names.items()
            ],
            "net_geo": [
                [
                    ident,
                    [
                        [layer, b.xmin, b.ymin, b.xmax, b.ymax]
                        for layer, b in entries
                    ],
                ]
                for ident, entries in self._net_geo.items()
            ],
            "warnings": list(self._warnings),
            "unknown_layers": sorted(self._unknown_layers),
            "nets": self._nets.state(),
            "devs": self._devs.state(),
            "stats": self.stats.as_dict(),
            "engine": self.strip_engine.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a sweep suspended by :meth:`snapshot_state`.

        The engine must have been constructed with the same technology
        and options as the one that produced the snapshot.  Restored
        live rows get row ids equal to their live-order index, so a
        snapshot taken immediately after restore is identical to the
        one restored from; dead heap references become dead placeholder
        rows that nothing else can reach.
        """
        self._y = state["y"]
        self._primed = bool(state["primed"])
        self._stop = int(state["stop"])
        self._heap_seq = int(state["heap_seq"])
        self._active_count = int(state["active_count"])
        for layer, rows in state["active"].items():
            t = self._tables[layer]
            t.clear()
            for row in rows:
                net = row[3]
                t.alloc(
                    row[0],
                    row[1],
                    row[2],
                    NO_NET if net is None else net,
                    row[5],
                )
            t.order = list(range(len(rows)))
            t.keys = [row[0] for row in rows]
            t.version = int(state["versions"][layer])
            # The serialized list order IS the heap order; rebuilding
            # entry by entry (no heapify) preserves the exact structure.
            heap: list[tuple[int, int, int]] = []
            for neg_bot, seq, ref in state["heaps"][layer]:
                if ref is None:
                    rid = t.alloc(0, 0, -neg_bot, NO_NET, 0)
                    t.kill(rid, 0)
                else:
                    rid = ref
                heap.append((neg_bot, seq, rid))
            self._heaps[layer] = heap
        self._last_strip_diff = int(state.get("last_strip_diff", -1))
        self._pending = [
            (e[0], e[1], e[2], e[3], e[4], e[5], e[6])
            for e in state["pending"]
        ]
        self._pending_seq = int(state["pending_seq"])
        self._labels_taken = int(state["labels_taken"])
        self._labels = [
            PlacedLabel(name, x, y, layer)
            for name, x, y, layer in state["labels"]
        ]
        self._unattached = [
            PlacedLabel(name, x, y, layer)
            for name, x, y, layer in state["unattached"]
        ]
        self._net_names = {
            int(ident): list(names) for ident, names in state["net_names"]
        }
        self._net_geo = {
            int(ident): [
                (layer, Box(x1, y1, x2, y2))
                for layer, x1, y1, x2, y2 in entries
            ]
            for ident, entries in state["net_geo"]
        }
        self._warnings = list(state["warnings"])
        self._unknown_layers = set(state["unknown_layers"])
        self._nets.restore(state["nets"])
        self._devs.restore(state["devs"])
        self.stats.restore(state["stats"])
        if self._profile is not None:
            # Re-link the shared profile dict: adopt restored timings
            # when the snapshot carried them, keep accumulating into
            # the same object either way.
            if isinstance(self.stats.profile, dict):
                self._profile = self.stats.profile
            else:
                self.stats.profile = self._profile
        self.strip_engine.restore_state(state["engine"])

    def _next_stop(self, stream: GeometryStream, y: int) -> int | None:
        """Step 2.d as a heap peek: O(#layers) plus lazy-dead cleanup."""
        stats = self.stats
        best = stream.next_top()
        if self._pending:
            top = -self._pending[0][0]
            if best is None or top > best:
                best = top
        for layer, heap in self._heaps.items():
            if not heap:
                continue
            live = self._tables[layer].live
            while heap:
                stats.intervals_scanned += 1
                neg_bot, _, rid = heap[0]
                if live[rid]:
                    bot = -neg_bot
                    if best is None or bot > best:
                        best = bot
                    break
                heapq.heappop(heap)
                stats.heap_pops += 1
                stats.lazy_discards += 1
        if best is None:
            return None
        if best >= y:  # pragma: no cover - sweep invariant
            raise AssertionError(f"scanline failed to advance: {best} >= {y}")
        return best

    # ------------------------------------------------------------------
    # active-list maintenance (steps 2.a / 2.b)
    # ------------------------------------------------------------------

    def _expire(self, y: int) -> None:
        """Pop the intervals whose bottom edge coincides with the scanline.

        Only heap entries that actually retire (expiring intervals plus
        lazily invalidated leftovers of earlier merges) are popped; one
        extra peek per non-empty layer detects that nothing more ends
        here.  Net-layer expiries are recorded in ``_prev_retired`` for
        the stop's duration, feeding the vertical-adjacency rule in
        :meth:`_insert`.
        """
        stats = self.stats
        retired = self._prev_retired
        for layer in retired:
            if retired[layer]:
                retired[layer] = []
        stop = self._stop
        for layer, heap in self._heaps.items():
            if not heap:
                continue
            t = self._tables[layer]
            live = t.live
            retired_here = retired.get(layer)
            is_poly = layer == self._poly
            while heap:
                stats.intervals_scanned += 1
                neg_bot, _, rid = heap[0]
                if live[rid] and -neg_bot != y:
                    break
                heapq.heappop(heap)
                stats.heap_pops += 1
                if not live[rid]:
                    stats.lazy_discards += 1
                    continue
                if is_poly and self._run_strips:
                    # Deferred strips all lie above this expiry, so the
                    # run must replay against the pre-expiry poly view.
                    self._flush_run()
                stats.expired += 1
                t.kill(rid, stop)
                # Live intervals are disjoint, so x1 is unique: bisect
                # lands exactly on the retiring interval.
                i = bisect_left(t.keys, t.x1[rid])
                del t.order[i]
                del t.keys[i]
                t.version += 1
                self._active_count -= 1
                if retired_here is not None:
                    retired_here.append((t.x1[rid], t.x2[rid], t.net[rid]))

    def _enter_continuations(self, y: int) -> None:
        """Re-insert buffered lower portions whose top is the scanline."""
        pending = self._pending
        while pending and -pending[0][0] == y:
            _, _, layer, x1, x2, ybot, net = heapq.heappop(pending)
            self._insert(layer, x1, x2, ybot, net, False, None)

    def _insert(
        self,
        layer: str,
        x1: int,
        x2: int,
        ybot: int,
        net: int | None,
        fresh: bool,
        box: Box | None,
    ) -> None:
        """Merge one box (or continuation) into a layer's active table.

        ``net`` is None for fresh geometry (a net is allocated on demand
        for net-carrying layers) and pre-bound for continuations.  ``box``
        is the original artwork box for geometry/location bookkeeping and
        None for continuations, whose upper part was already recorded.
        ``fresh`` geometry additionally joins, by vertical adjacency, the
        nets of strip-above intervals that retired at this very stop;
        adjacency to intervals that continue below is the ordinary merge.
        """
        t = self._tables.get(layer)
        if t is None:
            if layer not in self._ignored and layer not in self._unknown_layers:
                self._unknown_layers.add(layer)
                self._warnings.append(f"ignoring geometry on unknown layer {layer}")
            return
        keys = t.keys
        order = t.order
        carries_net = layer in self._net_layers

        if carries_net:
            if net is None:
                net = self._nets.make()
                self.stats.nets_created += 1
            if fresh:
                # Vertical adjacency: new geometry starting exactly where
                # the strip above ended joins the nets above it.  The
                # strip-above view is reconstructed from two event-bounded
                # sources: intervals retired during this stop (expiry or
                # merge consumption) and in-table survivors born before
                # this stop.  Union order follows ascending x1, exactly
                # as a full strip snapshot would.
                cands: list[tuple[int, int]] | None = None
                retired = self._prev_retired[layer]
                if retired:
                    cands = [
                        (px1, pnet)
                        for px1, px2, pnet in retired
                        if px2 > x1 and px1 < x2
                    ]
                tx1, tx2 = t.x1, t.x2
                tborn, tnet = t.born, t.net
                i = bisect_left(keys, x1)
                if i > 0 and tx2[order[i - 1]] > x1:
                    i -= 1
                n_live = len(order)
                born_limit = self._stop
                while i < n_live:
                    rid = order[i]
                    if tx1[rid] >= x2:
                        break
                    if tborn[rid] < born_limit and tx2[rid] > x1:
                        if cands is None:
                            cands = []
                        cands.append((tx1[rid], tnet[rid]))
                    i += 1
                if cands:
                    cands.sort()
                    for _, pnet in cands:
                        net = self._nets.union(net, pnet)
            if box is not None:
                self.strip_engine.touch_net(net, box.xmin, box.ymax)
                if self.keep_geometry:
                    self._net_geo.setdefault(net, []).append((layer, box))
        else:
            net = None

        # Locate the run of intervals that overlap or abut [x1, x2].
        lo = bisect_left(keys, x1)
        if lo > 0 and t.x2[order[lo - 1]] >= x1:
            lo -= 1
        hi = bisect_right(keys, x2, lo=lo)
        if lo == hi:
            rid = t.alloc(
                x1, x2, ybot, NO_NET if net is None else net, self._stop
            )
            order.insert(lo, rid)
            keys.insert(lo, x1)
            t.version += 1
            self._active_count += 1
            self._schedule(layer, rid, ybot)
            return

        # Merge the new box with the rows at order[lo:hi] (step 2.b).
        # The merged interval lives until the *earliest* bottom; the
        # deeper remainder of every taller piece re-enters from the
        # pending buffer.  The consumed pieces are lazily invalidated:
        # their heap entries stay queued, flagged dead, and are dropped
        # when they surface.
        self.stats.merges += 1
        pieces = order[lo:hi]
        tx1, tx2, tybot, tnet = t.x1, t.x2, t.ybot, t.net
        new_x1 = min(x1, tx1[pieces[0]])
        new_x2 = max(x2, tx2[pieces[-1]])
        max_bot = ybot
        for rid in pieces:
            if tybot[rid] > max_bot:
                max_bot = tybot[rid]
            if carries_net:
                net = self._nets.union(net, tnet[rid])
        stop = self._stop
        retired = self._prev_retired.get(layer) if carries_net else None
        for rid in pieces:
            t.kill(rid, stop)
            if retired is not None and t.born[rid] < stop:
                # A consumed strip-above interval stays visible to later
                # same-stop vertical-adjacency checks.
                retired.append((tx1[rid], tx2[rid], tnet[rid]))
            if tybot[rid] < max_bot:
                self._push_pending(
                    layer, tx1[rid], tx2[rid], max_bot, tybot[rid], net
                )
        if ybot < max_bot:
            self._push_pending(layer, x1, x2, max_bot, ybot, net)
        merged = t.alloc(
            new_x1, new_x2, max_bot, NO_NET if net is None else net, stop
        )
        order[lo:hi] = [merged]
        keys[lo:hi] = [new_x1]
        t.version += 1
        self._active_count += 1 - len(pieces)
        self._schedule(layer, merged, max_bot)

    def _schedule(self, layer: str, rid: int, ybot: int) -> None:
        """Register a row's bottom edge on its layer's event heap."""
        self._heap_seq += 1
        heapq.heappush(self._heaps[layer], (-ybot, self._heap_seq, rid))
        self.stats.heap_pushes += 1

    def _push_pending(
        self, layer: str, x1: int, x2: int, top: int, ybot: int, net: int | None
    ) -> None:
        self.stats.splits += 1
        self._pending_seq += 1
        heapq.heappush(
            self._pending, (-top, self._pending_seq, layer, x1, x2, ybot, net)
        )

    # ------------------------------------------------------------------
    # strip consumers
    # ------------------------------------------------------------------

    def _feed_consumers(
        self,
        y_lo: int,
        y_hi: int,
        channels: list[tuple[int, int, int]],
    ) -> None:
        """Hand the strip's spans to every attached consumer."""
        spans: dict[str, list[tuple[int, int]]] = {}
        for layer, t in self._tables.items():
            x1, x2 = t.x1, t.x2
            spans[layer] = [(x1[rid], x2[rid]) for rid in t.order]
        for consumer in self.strip_consumers:
            consumer.observe_strip(y_lo, y_hi, spans, channels)

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------

    def _attach_labels(
        self,
        y_lo: int,
        y_hi: int,
        stream: GeometryStream,
        cond_source: CondSource,
    ) -> None:
        """Bind labels that fall inside the strip to their nets.

        ``cond_source`` lazily materializes the strip's conducting
        diffusion spans ``(x1, x2, net)``; batch engines only pay for
        the list when a label actually lands in the strip.
        """
        fresh = stream.labels()
        if len(fresh) > self._labels_taken:
            self._labels.extend(fresh[self._labels_taken :])
            self._labels_taken = len(fresh)
        if not self._labels:
            return
        remaining: list[PlacedLabel] = []
        cond: list[tuple[int, int, int]] | None = None
        cond_starts: list[int] | None = None
        for label in self._labels:
            if label.y > y_hi:
                self._unattached.append(label)
            elif label.y < y_lo:
                remaining.append(label)
            else:
                if cond_starts is None or cond is None:
                    cond = cond_source()
                    cond_starts = [span[0] for span in cond]
                net = self._net_at_point(label, cond, cond_starts)
                if net is None:
                    self._unattached.append(label)
                else:
                    self._net_names.setdefault(net, []).append(label.name)
        self._labels = remaining

    def _net_at_point(
        self,
        label: PlacedLabel,
        cond: list[tuple[int, int, int]],
        cond_starts: list[int],
    ) -> int | None:
        layers: tuple[str, ...]
        if label.layer:
            layers = (label.layer,)
        else:
            layers = (self._metal, self._poly, self._diff)
        x = label.x
        for layer in layers:
            if layer == self._diff:
                i = bisect_right(cond_starts, x) - 1
                if i >= 0 and cond[i][1] >= x:
                    return cond[i][2]
            elif layer in self._net_layers:
                t = self._tables[layer]
                i = bisect_right(t.keys, x) - 1
                if i >= 0:
                    rid = t.order[i]
                    if t.x2[rid] >= x:
                        return t.net[rid]
        return None

    # ------------------------------------------------------------------
    # window boundary capture (HEXT's modified ACE)
    # ------------------------------------------------------------------

    def _capture_boundary(
        self,
        y_lo: int,
        y_hi: int,
        cond: list[tuple[int, int, int]],
        strip_channels: list[tuple[int, int, int]],
    ) -> None:
        window = self.window
        assert window is not None
        records = self._boundary
        wx1, wx2 = window.xmin, window.xmax

        # Active intervals are disjoint with strictly increasing x1 and
        # x2, so at most one interval per layer can start on the left
        # window edge (and one end on the right): bisect to the two
        # candidates instead of scanning the whole list every strip.
        for layer in self._net_layers:
            t = self._tables[layer]
            order = t.order
            if not order:
                continue
            keys = t.keys
            i = bisect_left(keys, wx1)
            if i < len(keys) and keys[i] == wx1:
                records.append(
                    (Face.LEFT, layer, y_lo, y_hi, t.net[order[i]])
                )
            j = bisect_right(keys, wx2) - 1
            if j >= 0 and t.x2[order[j]] == wx2:
                records.append(
                    (Face.RIGHT, layer, y_lo, y_hi, t.net[order[j]])
                )
        for x1, x2, net in cond:
            if x1 == wx1:
                records.append((Face.LEFT, self._diff, y_lo, y_hi, net))
            if x2 == wx2:
                records.append((Face.RIGHT, self._diff, y_lo, y_hi, net))
        for x1, x2, dev in strip_channels:
            if x1 == wx1:
                records.append((Face.LEFT, CHANNEL, y_lo, y_hi, dev))
            if x2 == wx2:
                records.append((Face.RIGHT, CHANNEL, y_lo, y_hi, dev))

        if y_hi == window.ymax:
            for layer in self._net_layers:
                t = self._tables[layer]
                for rid in t.order:
                    records.append(
                        (Face.TOP, layer, t.x1[rid], t.x2[rid], t.net[rid])
                    )
            for x1, x2, net in cond:
                records.append((Face.TOP, self._diff, x1, x2, net))
            for x1, x2, dev in strip_channels:
                records.append((Face.TOP, CHANNEL, x1, x2, dev))
        if y_lo == window.ymin:
            for layer in self._net_layers:
                t = self._tables[layer]
                for rid in t.order:
                    records.append(
                        (Face.BOTTOM, layer, t.x1[rid], t.x2[rid], t.net[rid])
                    )
            for x1, x2, net in cond:
                records.append((Face.BOTTOM, self._diff, x1, x2, net))
            for x1, x2, dev in strip_channels:
                records.append((Face.BOTTOM, CHANNEL, x1, x2, dev))

    # ------------------------------------------------------------------
    # finalize (step 3)
    # ------------------------------------------------------------------

    def _finalize(self) -> Circuit:
        from itertools import repeat

        from .netlist import Net

        nets = self._nets
        for label in self._labels:  # below all geometry
            self._unattached.append(label)
        self._labels = []

        names = nets.fold(self._net_names)
        geometry = nets.fold(self._net_geo) if self.keep_geometry else {}

        # The engine owns the location folds: canonical net order is
        # topmost, then leftmost, location first.
        roots, locations = self.strip_engine.net_order()
        # A batch engine reconstructs root -> index from its own order
        # arrays; the 66k-entry dict is only built when something here
        # (window boundary mapping, a dict-driven engine) consumes it.
        if self.strip_engine.wants_index_of or self._boundary:
            index_of = dict(zip(roots, range(1, len(roots) + 1)))
        else:
            index_of = None

        # Net materialization runs once per net (66k times on the n=256
        # mesh), so the unlabeled/no-geometry bulk goes through C-level
        # map/zip construction; only nets with names or kept geometry
        # take the per-root python path.
        if not names and not geometry:
            net_objs = list(
                map(
                    Net,
                    range(1, len(roots) + 1),
                    map(list, repeat((), len(roots))),
                    locations,
                )
            )
        else:
            net_objs = []
            append_net = net_objs.append
            get_names = names.get
            get_geo = geometry.get
            for i, root in enumerate(roots):
                raw = get_names(root)
                if raw:
                    seen: set[str] = set()
                    uniq = [
                        n for n in raw if not (n in seen or seen.add(n))
                    ]
                else:
                    uniq = []
                append_net(
                    Net(i + 1, uniq, locations[i], get_geo(root) or [])
                )

        boundary_devs = {
            ident
            for _, layer, _, _, ident in self._boundary
            if layer == CHANNEL
        }
        boundary_dev_roots = {self._devs.find(d) for d in boundary_devs}

        warnings = list(self._warnings)
        kind_enh = self.tech.device_name(False)
        kind_dep = self.tech.device_name(True)
        devices, dev_index_of, dev_warnings = (
            self.strip_engine.build_devices(
                index_of, kind_enh, kind_dep, boundary_dev_roots
            )
        )
        warnings.extend(dev_warnings)

        for label in self._unattached:
            warnings.append(
                f"label {label.name!r} at ({label.x}, {label.y}) "
                f"matches no conducting geometry"
            )

        boundary = []
        for face, layer, lo, hi, ident in self._boundary:
            if layer == CHANNEL:
                mapped = dev_index_of.get(self._devs.find(ident))
            else:
                mapped = index_of.get(nets.find(ident))
            if mapped is not None:
                boundary.append(BoundaryRecord(face, layer, lo, hi, mapped))

        return Circuit(
            nets=net_objs,
            devices=devices,
            boundary=_coalesce_boundary(boundary),
            warnings=warnings,
        )


# ----------------------------------------------------------------------
# span helpers (disjoint sorted span lists, single merged sweeps)
# ----------------------------------------------------------------------


def _intersect_intervals(
    spans: list[tuple[int, int, int]], intervals: list[tuple[int, int, int]]
) -> list[tuple[int, int, int]]:
    """Intersect two sorted span lists, keeping the second's nets."""
    out: list[tuple[int, int, int]] = []
    i = j = 0
    n_spans, n_intervals = len(spans), len(intervals)
    while i < n_spans and j < n_intervals:
        a = spans[i]
        b = intervals[j]
        lo = a[0] if a[0] > b[0] else b[0]
        hi = a[1] if a[1] < b[1] else b[1]
        if lo < hi:
            out.append((lo, hi, b[2]))
        if a[1] <= b[1]:
            i += 1
        else:
            j += 1
    return out


def _subtract_channels(
    segments: list[tuple[int, int, int]], holes: list[tuple[int, int, int]]
) -> list[tuple[int, int, int]]:
    """Channel segments minus hole spans, keeping each gate net."""
    out: list[tuple[int, int, int]] = []
    hj = 0
    n_holes = len(holes)
    for x1, x2, pnet in segments:
        pos = x1
        while hj < n_holes and holes[hj][1] <= pos:
            hj += 1
        j = hj
        while j < n_holes:
            hole = holes[j]
            if hole[0] >= x2:
                break
            if hole[0] > pos:
                out.append((pos, hole[0], pnet))
            if hole[1] > pos:
                pos = hole[1]
            if pos >= x2:
                break
            j += 1
        if pos < x2:
            out.append((pos, x2, pnet))
    return out


def _subtract_diff(
    spans: list[tuple[int, int, int]], holes: list[tuple[int, int, int]]
) -> list[tuple[int, int]]:
    """Diffusion spans minus channel spans; all inputs sorted."""
    out: list[tuple[int, int]] = []
    hj = 0
    n_holes = len(holes)
    for lo, hi, _ in spans:
        pos = lo
        while hj < n_holes and holes[hj][1] <= pos:
            hj += 1
        j = hj
        while j < n_holes:
            hlo, hhi = holes[j][0], holes[j][1]
            if hlo >= hi:
                break
            if hlo > pos:
                out.append((pos, hlo))
            if hhi > pos:
                pos = hhi
            if pos >= hi:
                break
            j += 1
        if pos < hi:
            out.append((pos, hi))
    return out


def _coalesce_boundary(records: list[BoundaryRecord]) -> list[BoundaryRecord]:
    """Join per-strip boundary records that continue one another."""
    records.sort(key=lambda r: (r.face.value, r.layer, r.ident, r.lo))
    out: list[BoundaryRecord] = []
    for rec in records:
        prev = out[-1] if out else None
        if (
            prev is not None
            and prev.face == rec.face
            and prev.layer == rec.layer
            and prev.ident == rec.ident
            and prev.hi >= rec.lo
        ):
            if rec.hi > prev.hi:
                out[-1] = BoundaryRecord(
                    prev.face, prev.layer, prev.lo, rec.hi, prev.ident
                )
        else:
            out.append(rec)
    return out
