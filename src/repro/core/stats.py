"""Extraction statistics: phase timers and scanline counters.

The paper reports a coarse distribution of extraction time (section 5:
40% parse/sort, 15% list insertion, 20% device computation, 10% storage/
IO/init, 15% miscellaneous) and an expected-complexity analysis in terms
of scanline stops and active-list length.  This module is how the
benchmarks observe both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: Phase keys, mirroring the paper's breakdown.
PHASES = ("frontend", "insert", "devices", "output", "misc")


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time per extraction phase."""

    seconds: dict[str, float] = field(
        default_factory=lambda: {phase: 0.0 for phase in PHASES}
    )
    _started: float = 0.0
    _active: str | None = None

    def start(self, phase: str) -> None:
        now = time.perf_counter()
        if self._active is not None:
            self.seconds[self._active] += now - self._started
        self._active = phase
        self._started = now

    def stop(self) -> None:
        if self._active is not None:
            self.seconds[self._active] += time.perf_counter() - self._started
            self._active = None

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def percentages(self) -> dict[str, float]:
        total = self.total
        if total == 0:
            return {phase: 0.0 for phase in self.seconds}
        return {
            phase: 100.0 * value / total for phase, value in self.seconds.items()
        }


@dataclass
class ScanStats:
    """Counters for the complexity claims of section 4."""

    boxes_in: int = 0  #: primitive boxes received from the front-end
    stops: int = 0  #: scanline stops (loop iterations)
    strips: int = 0  #: non-empty strips processed
    active_samples: int = 0  #: sum of active-list lengths over stops
    peak_active: int = 0  #: max total active-list length
    nets_created: int = 0
    devices_created: int = 0
    merges: int = 0  #: interval merge operations
    splits: int = 0  #: continuation splits of taller boxes

    # Event-heap counters (the machine-checkable complexity guardrail:
    # per-stop scheduling work must track events, not active-list size).
    heap_pushes: int = 0  #: intervals scheduled on a bottom-edge heap
    heap_pops: int = 0  #: heap entries removed (expiries + lazy discards)
    lazy_discards: int = 0  #: popped entries already invalidated by merges
    expired: int = 0  #: live intervals retired at their bottom edge
    intervals_scanned: int = 0  #: heap entries examined across all stops
    max_stop_overhead: int = 0  #: max per-stop examinations beyond removals

    #: Wall-clock seconds per host phase (schedule / expire / insert /
    #: strip / finalize), populated only when the host runs with
    #: ``profile=True``; ``None`` otherwise so counter comparisons across
    #: engines and checkpoint round-trips stay timing-free by default.
    profile: "dict[str, float] | None" = None

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dict (checkpoint payload).

        The optional ``profile`` timings ride along only when profiling
        is on; an unprofiled snapshot is byte-identical to the pre-
        profiler schema.
        """
        out = dict(vars(self))
        if out.get("profile") is None:
            out.pop("profile", None)
        else:
            out["profile"] = dict(out["profile"])
        return out

    def restore(self, values: dict[str, int]) -> None:
        """Restore counters captured by :meth:`as_dict`."""
        for key, value in values.items():
            if key == "profile":
                self.profile = {k: float(v) for k, v in value.items()}
            else:
                setattr(self, key, int(value))

    @property
    def mean_active(self) -> float:
        return self.active_samples / self.stops if self.stops else 0.0

    def observe_active(self, total_active: int) -> None:
        self.active_samples += total_active
        if total_active > self.peak_active:
            self.peak_active = total_active
