"""ACE's back-end: the edge-based scanline extraction engine."""

from .extractor import (
    ExtractionReport,
    extract,
    extract_report,
    extract_window,
)
from .netlist import CHANNEL, BoundaryRecord, Circuit, Device, Face, Net
from .sizing import SizedDevice, size_device
from .stats import PHASES, PhaseTimer, ScanStats
from .unionfind import UnionFind

__all__ = [
    "CHANNEL",
    "PHASES",
    "BoundaryRecord",
    "Circuit",
    "Device",
    "ExtractionReport",
    "Face",
    "Net",
    "PhaseTimer",
    "ScanStats",
    "SizedDevice",
    "UnionFind",
    "extract",
    "extract_report",
    "extract_window",
    "size_device",
]
