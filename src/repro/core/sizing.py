"""Transistor length/width computation (section 3 of the paper).

*"The source edge length of a transistor is defined to be the length of
the perimeter along which the source net and the channel touch.  The
width of the transistor is then computed as the mean of the source and
drain edge lengths.  The length of the transistor is computed as the area
of the channel divided by the width."*

The extractor hands us the channel area and a map from terminal net to
total contact perimeter; everything else is arithmetic plus conventions
for the degenerate cases (fewer than two terminals, extra terminals).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SizedDevice:
    """The outcome of sizing one channel region."""

    source: int | None
    drain: int | None
    width: float
    length: float


def size_device(area: int, terminals: "dict[int, int]") -> SizedDevice:
    """Size a channel of ``area`` with the given net -> perimeter map.

    The two largest-perimeter terminals become source and drain (source
    is the larger; ties break toward the lower net index so results are
    deterministic).  Extra terminals -- a channel touched by three or
    more diffusion nets -- do not contribute to the width, matching the
    two-terminal model of the paper; the static checker flags them.
    """
    if area < 0:
        raise ValueError("channel area cannot be negative")
    if len(terminals) == 2:
        # Fast path for the overwhelmingly common two-terminal channel.
        (n1, p1), (n2, p2) = terminals.items()
        if (-p1, n1) > (-p2, n2):
            n1, p1, n2, p2 = n2, p2, n1, p1
        width = (p1 + p2) / 2
        return SizedDevice(
            source=n1, drain=n2, width=width,
            length=area / width if width else 0.0,
        )
    ranked = sorted(terminals.items(), key=lambda item: (-item[1], item[0]))
    if len(ranked) >= 2:
        (source, p_source), (drain, p_drain) = ranked[0], ranked[1]
        width = (p_source + p_drain) / 2
    elif len(ranked) == 1:
        # Single-terminal channel: a MOS capacitor or a malformed device.
        # Use the one contact edge as the width so the length stays
        # meaningful for the checker's report.
        (source, p_source) = ranked[0]
        drain = None
        width = float(p_source)
    else:
        return SizedDevice(source=None, drain=None, width=0.0, length=0.0)
    length = area / width if width else 0.0
    return SizedDevice(source=source, drain=drain, width=width, length=length)
