"""Disjoint-set forest used for net and device equivalence classes.

ACE merges nets whenever geometry proves two pieces of artwork are the
same electrical node; the classic union-find with path halving and union
by size keeps every merge effectively constant-time.  Ids are dense
integers handed out by :meth:`make`, which lets callers keep per-id
attribute tables in plain dicts and fold them by root at finalize time.
"""

from __future__ import annotations


class UnionFind:
    """Disjoint sets over dense integer ids."""

    __slots__ = ("_parent", "_size")

    def __init__(self) -> None:
        self._parent: list[int] = []
        self._size: list[int] = []

    def __len__(self) -> int:
        return len(self._parent)

    def make(self) -> int:
        """Allocate a fresh singleton set; returns its id."""
        ident = len(self._parent)
        self._parent.append(ident)
        self._size.append(1)
        return ident

    def extend(self, count: int) -> int:
        """Allocate ``count`` fresh singleton sets; returns the first id.

        Equivalent to ``count`` consecutive :meth:`make` calls -- the new
        ids are ``base .. base + count - 1`` -- but lets batch engines
        allocate a strip's worth of nets in one call.
        """
        base = len(self._parent)
        self._parent.extend(range(base, base + count))
        self._size.extend([1] * count)
        return base

    def state(self) -> "list[list[int]]":
        """The raw forest as ``[parent, size]`` (checkpoint payload)."""
        return [list(self._parent), list(self._size)]

    def restore(self, state: "list[list[int]]") -> None:
        """Restore a forest captured by :meth:`state`."""
        parent, size = state
        self._parent = [int(p) for p in parent]
        self._size = [int(s) for s in size]

    def parent_snapshot(self) -> list[int]:
        """A copy of the raw parent table, for bulk root resolution.

        Entries are one hop of the forest, not roots; callers resolving
        the whole table at once (``parent[parent]`` to a fixpoint) get
        exactly the roots :meth:`find` would return.
        """
        return list(self._parent)

    def find(self, ident: int) -> int:
        """Representative of ``ident``'s set (with path halving)."""
        parent = self._parent
        while parent[ident] != ident:
            parent[ident] = parent[parent[ident]]
            ident = parent[ident]
        return ident

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; returns the surviving root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def same(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def roots(self) -> list[int]:
        """All current set representatives, in id order."""
        return [i for i in range(len(self._parent)) if self.find(i) == i]

    def fold(self, table: "dict[int, list]") -> dict[int, list]:
        """Re-key a per-id attribute table by root, concatenating lists."""
        folded: dict[int, list] = {}
        for ident, values in table.items():
            root = self.find(ident)
            if root in folded:
                folded[root].extend(values)
            else:
                folded[root] = list(values)
        return folded
