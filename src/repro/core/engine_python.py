"""The pure-python strip engine: the paper's sweeps as reference code.

This is the always-available :class:`~repro.core.stripengine.StripEngine`
back-end.  The logic is the scanline's original per-interval strip
processing, unchanged -- single merged sweeps over sorted span lists,
union-find calls made interval by interval in x order.  The numpy engine
(:mod:`repro.core.engine_numpy`) replays exactly this order in batch
form; when the two disagree, *this* file is the specification.
"""

from __future__ import annotations

from ..frontend.stream import GeometryStream
from ..geometry import Box
from .netlist import Device
from .sizing import size_device

from . import scanline as _scan
from .scanline import (
    _intersect_intervals,
    _subtract_channels,
    _subtract_diff,
)
from .stripengine import StripEngine


class PythonStripEngine(StripEngine):
    """Per-strip device/net computation as plain-python sweeps."""

    name = "python"

    def __init__(self, host) -> None:
        super().__init__(host)
        self._prev_diff: list[tuple[int, int, int]] = []
        self._prev_channels: list[tuple[int, int, int]] = []
        self._net_loc: dict[int, tuple[int, int]] = {}  # id -> (ymax, -xmin)
        self._dev: dict[int, dict] = {}  # device id -> attribute record

    # ------------------------------------------------------------------
    # strip processing (step 2.c)
    # ------------------------------------------------------------------

    def process_strip(
        self, y_lo: int, y_hi: int, stream: GeometryStream
    ) -> None:
        h = self.host
        height = y_hi - y_lo
        nets = h._nets
        find = nets.find
        prev_diff = self._prev_diff
        prev_channels = self._prev_channels

        nd = h._tables[h._diff].spans()
        np_ = h._tables[h._poly].spans()
        nb = h._tables[h._buried].spans()
        ni = h._tables[h._implant].spans()

        # Channels: diffusion AND poly AND NOT buried, remembering the
        # poly interval that forms each gate.
        channels: list[tuple[int, int, int]] = []  # (x1, x2, poly net id)
        buried_holes = [] if "channel-under-buried" in _scan.FAULTS else nb
        if nd and np_:
            channels = _intersect_intervals(nd, np_)
            if buried_holes:
                channels = _subtract_channels(channels, buried_holes)

        # Conducting diffusion: diffusion minus channels.
        if channels:
            cond_bare = _subtract_diff(nd, channels)
        else:
            cond_bare = [(x1, x2) for x1, x2, _ in nd]

        # Assign diffusion nets by vertical adjacency to the strip above;
        # both lists are sorted, so one merged sweep suffices.
        cond: list[tuple[int, int, int]] = []
        n_prev_diff = len(prev_diff)
        net_loc = self._net_loc
        pj = 0
        for x1, x2 in cond_bare:
            while pj < n_prev_diff and prev_diff[pj][1] <= x1:
                pj += 1
            net = None
            k = pj
            while k < n_prev_diff:
                entry = prev_diff[k]
                if entry[0] >= x2:
                    break
                net = entry[2] if net is None else nets.union(net, entry[2])
                k += 1
            if net is None:
                net = nets.make()
                h.stats.nets_created += 1
            # inline touch_net: this runs once per span per strip
            loc = (y_hi, -x1)
            current = net_loc.get(net)
            if current is None or loc > current:
                net_loc[net] = loc
            if h.keep_geometry:
                h._net_geo.setdefault(net, []).append(
                    (h._diff, Box(x1, y_lo, x2, y_hi))
                )
            cond.append((x1, x2, net))

        # Devices: channel spans inherit device identity from above, the
        # implant flag comes from a parallel sweep over the implant list.
        strip_channels: list[tuple[int, int, int]] = []
        n_prev_channels = len(prev_channels)
        n_implant = len(ni)
        cj = ij = 0
        for x1, x2, poly_net in channels:
            while cj < n_prev_channels and prev_channels[cj][1] <= x1:
                cj += 1
            dev = None
            k = cj
            while k < n_prev_channels:
                entry = prev_channels[k]
                if entry[0] >= x2:
                    break
                dev = entry[2] if dev is None else h._devs.union(dev, entry[2])
                k += 1
            if dev is None:
                dev = h._devs.make()
                h.stats.devices_created += 1
                self._dev[dev] = {
                    "area": 0,
                    "gates": set(),
                    "terms": {},
                    "geo": [],
                    "loc": None,
                    "impl": False,
                }
            rec = self._dev[h._devs.find(dev)]
            rec["area"] += (x2 - x1) * height
            rec["gates"].add(find(poly_net))
            if h.keep_geometry:
                rec["geo"].append(Box(x1, y_lo, x2, y_hi))
            loc = (y_hi, -x1)
            if rec["loc"] is None or loc > rec["loc"]:
                rec["loc"] = loc
            while ij < n_implant and ni[ij][1] <= x1:
                ij += 1
            if ij < n_implant and ni[ij][0] < x2:
                rec["impl"] = True
            strip_channels.append((x1, x2, dev))

        # Terminal contacts.
        if strip_channels:
            if cond:
                # horizontal: conducting diffusion abutting a channel
                # sideways.  Channels and conducting spans partition the
                # diffusion, so abutting pairs are neighbours in the
                # merged x-order -- one zipper walk finds them all.
                self._horizontal_terminals(strip_channels, cond, height)
            # vertical: channel below conducting diffusion of the strip above
            dj = 0
            for cx1, cx2, dev in strip_channels:
                while dj < n_prev_diff and prev_diff[dj][1] <= cx1:
                    dj += 1
                k = dj
                while k < n_prev_diff:
                    px1, px2, pnet = prev_diff[k]
                    if px1 >= cx2:
                        break
                    overlap = min(cx2, px2) - max(cx1, px1)
                    if overlap > 0:
                        self._add_terminal(dev, pnet, overlap)
                    k += 1
        if prev_channels and cond:
            # vertical: conducting diffusion below a channel of the strip above
            pk = 0
            for dx1, dx2, dnet in cond:
                while pk < n_prev_channels and prev_channels[pk][1] <= dx1:
                    pk += 1
                k = pk
                while k < n_prev_channels:
                    px1, px2, pdev = prev_channels[k]
                    if px1 >= dx2:
                        break
                    overlap = min(dx2, px2) - max(dx1, px1)
                    if overlap > 0:
                        self._add_terminal(pdev, dnet, overlap)
                    k += 1

        # Contact cuts union conducting nets wherever the layers overlap
        # both each other and the cut (pointwise, not per cut span).  The
        # cuts are disjoint and sorted, so each conducting list is walked
        # once across all cuts.
        nc = h._tables[h._contact].spans()
        if nc:
            metal = h._tables[h._metal].spans()
            n_metal, n_poly, n_cond = len(metal), len(np_), len(cond)
            mi = pi = di = 0
            for cut in nc:
                cx1, cx2 = cut[0], cut[1]
                present: list[tuple[int, int, int]] = []
                while mi < n_metal and metal[mi][1] <= cx1:
                    mi += 1
                k = mi
                while k < n_metal:
                    iv = metal[k]
                    if iv[0] >= cx2:
                        break
                    present.append(
                        (max(iv[0], cx1), min(iv[1], cx2), iv[2])
                    )
                    k += 1
                while pi < n_poly and np_[pi][1] <= cx1:
                    pi += 1
                k = pi
                while k < n_poly:
                    iv = np_[k]
                    if iv[0] >= cx2:
                        break
                    present.append(
                        (max(iv[0], cx1), min(iv[1], cx2), iv[2])
                    )
                    k += 1
                while di < n_cond and cond[di][1] <= cx1:
                    di += 1
                k = di
                while k < n_cond:
                    dx1, dx2, dnet = cond[k]
                    if dx1 >= cx2:
                        break
                    present.append((max(dx1, cx1), min(dx2, cx2), dnet))
                    k += 1
                present.sort()
                for i, (a1, a2, anet) in enumerate(present):
                    for b1, b2, bnet in present[i + 1 :]:
                        if b1 >= a2:
                            break
                        nets.union(anet, bnet)

        # Buried contacts union poly and diffusion where all three meet;
        # again a single monotone sweep over each sorted list.
        if nb and cond and "buried-skip" not in _scan.FAULTS:
            n_poly, n_cond = len(np_), len(cond)
            bp = bd = 0
            for biv in nb:
                bx1, bx2 = biv[0], biv[1]
                while bp < n_poly and np_[bp][1] <= bx1:
                    bp += 1
                k = bp
                while k < n_poly:
                    iv = np_[k]
                    if iv[0] >= bx2:
                        break
                    px1, px2 = max(iv[0], bx1), min(iv[1], bx2)
                    if px1 < px2:
                        while bd < n_cond and cond[bd][1] <= px1:
                            bd += 1
                        dk = bd
                        while dk < n_cond:
                            dx1, dx2, dnet = cond[dk]
                            if dx1 >= px2:
                                break
                            nets.union(iv[2], dnet)
                            dk += 1
                    k += 1

        h._attach_labels(y_lo, y_hi, stream, lambda: cond)

        if h.window is not None:
            h._capture_boundary(y_lo, y_hi, cond, strip_channels)

        if h.strip_consumers:
            h._feed_consumers(y_lo, y_hi, channels)

        self._prev_diff = cond
        self._prev_channels = strip_channels

    def _horizontal_terminals(
        self,
        strip_channels: list[tuple[int, int, int]],
        cond: list[tuple[int, int, int]],
        height: int,
    ) -> None:
        """Record channel/diffusion side contacts via one zipper walk."""
        i = j = 0
        n_ch, n_co = len(strip_channels), len(cond)
        prev_is_channel = False
        prev_end = None
        prev_ident = None
        while i < n_ch or j < n_co:
            if j >= n_co or (i < n_ch and strip_channels[i][0] < cond[j][0]):
                span, is_channel = strip_channels[i], True
                i += 1
            else:
                span, is_channel = cond[j], False
                j += 1
            if prev_end == span[0] and prev_is_channel != is_channel:
                if is_channel:
                    self._add_terminal(span[2], prev_ident, height)
                else:
                    self._add_terminal(prev_ident, span[2], height)
            prev_is_channel, prev_end, prev_ident = is_channel, span[1], span[2]

    def _add_terminal(self, dev: int, net: int, length: int) -> None:
        rec = self._dev[self.host._devs.find(dev)]
        root = self.host._nets.find(net)
        rec["terms"][root] = rec["terms"].get(root, 0) + length

    def touch_net(self, net: int, xmin: int, ymax: int) -> None:
        loc = (ymax, -xmin)
        current = self._net_loc.get(net)
        if current is None or loc > current:
            self._net_loc[net] = loc

    # ------------------------------------------------------------------
    # finalize folds (step 3)
    # ------------------------------------------------------------------

    def net_order(self) -> "tuple[list[int], list[tuple[int, int]]]":
        find = self.host._nets.find
        locations: dict[int, tuple[int, int]] = {}
        for ident, loc in self._net_loc.items():
            root = find(ident)
            if root not in locations or loc > locations[root]:
                locations[root] = loc
        # Canonical net order: topmost, then leftmost, location first.
        roots = sorted(
            locations,
            key=lambda r: (-locations[r][0], -locations[r][1], r),
        )
        return roots, [
            (-locations[r][1], locations[r][0]) for r in roots
        ]

    def build_devices(
        self,
        index_of: "dict[int, int]",
        kind_enh: str,
        kind_dep: str,
        boundary_dev_roots: "set[int]",
    ) -> "tuple[list[Device], dict[int, int], list[str]]":
        h = self.host
        find = h._nets.find
        dev_find = h._devs.find

        # Fold device records by device root.
        dev_roots: dict[int, dict] = {}
        for ident, rec in self._dev.items():
            root = dev_find(ident)
            into = dev_roots.get(root)
            if into is None or into is rec:
                dev_roots[root] = rec
                continue
            into["area"] += rec["area"]
            into["gates"] |= rec["gates"]
            for net, length in rec["terms"].items():
                into["terms"][net] = into["terms"].get(net, 0) + length
            into["geo"].extend(rec["geo"])
            if rec["loc"] is not None and (
                into["loc"] is None or rec["loc"] > into["loc"]
            ):
                into["loc"] = rec["loc"]
            into["impl"] = into["impl"] or rec["impl"]

        order = sorted(
            dev_roots,
            key=lambda r: (
                (-dev_roots[r]["loc"][0], -dev_roots[r]["loc"][1])
                if dev_roots[r]["loc"]
                else (0, 0),
                r,
            ),
        )
        devices: list[Device] = []
        dev_index_of: dict[int, int] = {}
        warnings: list[str] = []
        for i, root in enumerate(order):
            rec = dev_roots[root]
            terms: dict[int, int] = {}
            for net, length in rec["terms"].items():
                idx = index_of.get(find(net))
                if idx is not None:
                    terms[idx] = terms.get(idx, 0) + length
            gate_roots = {find(g) for g in rec["gates"]}
            gate_indices = [
                index_of[g] for g in gate_roots if g in index_of
            ]
            if len(gate_indices) > 1:
                gate_indices.sort()
            sized = size_device(rec["area"], terms)
            loc = rec["loc"]
            on_boundary = root in boundary_dev_roots
            device = Device(
                i,
                kind_dep if rec["impl"] else kind_enh,
                gate_indices[0] if gate_indices else None,
                sized.source,
                sized.drain,
                sized.length,
                sized.width,
                rec["area"],
                (-loc[1], loc[0]) if loc else None,
                terms,
                gate_indices,
                rec["geo"],
                on_boundary,
                rec["impl"],
            )
            devices.append(device)
            dev_index_of[root] = i
            if not on_boundary and (
                sized.source is None
                or sized.drain is None
                or len(gate_indices) != 1
            ):
                warnings.append(
                    f"malformed transistor at {device.location}: "
                    f"{len(gate_indices)} gate nets, {len(terms)} terminals"
                )
        return devices, dev_index_of, warnings

    # ------------------------------------------------------------------
    # banded streaming hooks (docs/STREAMING.md)
    # ------------------------------------------------------------------

    def live_roots(self) -> "tuple[set[int], set[int]]":
        h = self.host
        find = h._nets.find
        dev_find = h._devs.find
        return (
            {find(net) for _, _, net in self._prev_diff},
            {dev_find(dev) for _, _, dev in self._prev_channels},
        )

    def retire(
        self, live_nets: "set[int]", live_devs: "set[int]"
    ) -> "tuple[dict[int, tuple[int, int]], dict[int, dict]]":
        h = self.host
        find = h._nets.find
        dev_find = h._devs.find

        # Net locations: a pure max fold, so live entries can be
        # compacted to one entry per root -- this is what keeps the
        # location table O(live nets) instead of O(nets seen).
        dead_locs: dict[int, tuple[int, int]] = {}
        keep_locs: dict[int, tuple[int, int]] = {}
        for ident, loc in self._net_loc.items():
            root = find(ident)
            target = keep_locs if root in live_nets else dead_locs
            current = target.get(root)
            if current is None or loc > current:
                target[root] = loc
        self._net_loc = keep_locs

        # Device records: dead roots fold in table insertion order (the
        # finalize fold restricted to them); live records stay keyed by
        # their raw ids so future lookups and geometry append order are
        # untouched.
        dead_devs: dict[int, dict] = {}
        keep_devs: dict[int, dict] = {}
        for ident, rec in self._dev.items():
            root = dev_find(ident)
            if root in live_devs:
                keep_devs[ident] = rec
                continue
            into = dead_devs.get(root)
            if into is None or into is rec:
                dead_devs[root] = rec
                continue
            into["area"] += rec["area"]
            into["gates"] |= rec["gates"]
            for net, length in rec["terms"].items():
                into["terms"][net] = into["terms"].get(net, 0) + length
            into["geo"].extend(rec["geo"])
            if rec["loc"] is not None and (
                into["loc"] is None or rec["loc"] > into["loc"]
            ):
                into["loc"] = rec["loc"]
            into["impl"] = into["impl"] or rec["impl"]
        self._dev = keep_devs
        return dead_locs, dead_devs

    def snapshot_state(self) -> dict:
        return {
            "prev_diff": [list(entry) for entry in self._prev_diff],
            "prev_channels": [list(entry) for entry in self._prev_channels],
            "net_loc": [
                [ident, loc[0], loc[1]]
                for ident, loc in self._net_loc.items()
            ],
            "dev": [
                [
                    ident,
                    {
                        "area": rec["area"],
                        "gates": sorted(rec["gates"]),
                        "terms": [
                            [net, length]
                            for net, length in rec["terms"].items()
                        ],
                        "geo": [
                            [b.xmin, b.ymin, b.xmax, b.ymax]
                            for b in rec["geo"]
                        ],
                        "loc": list(rec["loc"]) if rec["loc"] else None,
                        "impl": rec["impl"],
                    },
                ]
                for ident, rec in self._dev.items()
            ],
        }

    def restore_state(self, state: dict) -> None:
        self._prev_diff = [
            (x1, x2, net) for x1, x2, net in state["prev_diff"]
        ]
        self._prev_channels = [
            (x1, x2, dev) for x1, x2, dev in state["prev_channels"]
        ]
        self._net_loc = {
            int(ident): (y, nx) for ident, y, nx in state["net_loc"]
        }
        self._dev = {
            int(ident): {
                "area": int(rec["area"]),
                "gates": set(rec["gates"]),
                "terms": {
                    int(net): int(length) for net, length in rec["terms"]
                },
                "geo": [
                    Box(x1, y1, x2, y2) for x1, y1, x2, y2 in rec["geo"]
                ],
                "loc": tuple(rec["loc"]) if rec["loc"] else None,
                "impl": bool(rec["impl"]),
            }
            for ident, rec in state["dev"]
        }
