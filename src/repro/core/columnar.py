"""Columnar storage for the scanline host's active-interval state.

The host keeps one :class:`LayerTable` per tracked layer.  A table is a
persistent structure-of-arrays: parallel ``array('q')`` int64 columns
(``x1``/``x2``/``ybot``/``net``/``born``/``died``) plus a ``live`` byte
mask, all append-only, and a pair of small python lists (``order`` --
row ids of the *live* intervals in ascending-x1 order -- and ``keys`` --
their x1 values, for ``bisect``).  Inserts append a row and splice one
id into ``order``; expiries and merge consumptions flip one ``live``
byte, stamp ``died``, and remove one id.  Nothing is ever rebuilt from
python object lists, which is the point: the numpy strip engine reads a
column zero-copy via the buffer protocol (``np.frombuffer``) and gathers
the live subset with a single C-level ``take`` whenever the layer's
``version`` counter says the view went stale -- never once per strip.

Row ids are stable for the lifetime of the sweep, which is what lets the
batched strip-run path (docs/ENGINES.md) replay a whole run of stops
from the ``born``/``died`` stamps alone.  The pure-python strip engine
reads the same state through :meth:`LayerTable.spans`, a version-cached
list of ``(x1, x2, net)`` tuples, so it needs no numpy and no columns
knowledge.

``net`` holds ``-1`` for layers whose intervals carry no net id; the
host translates to/from ``None`` at the checkpoint boundary so the
serialized schema is unchanged from the list-record host.
"""

from __future__ import annotations

from array import array

#: ``died`` stamp of a row that is still alive.  Any value greater than
#: every reachable stop ordinal works; this one leaves int64 headroom
#: for arithmetic on the column.
DIED_OPEN = 1 << 62

#: ``net`` stamp of a row on a layer that carries no net id.
NO_NET = -1


class LayerTable:
    """One layer's active intervals as persistent int64 columns."""

    __slots__ = (
        "x1",
        "x2",
        "ybot",
        "net",
        "born",
        "died",
        "live",
        "order",
        "keys",
        "version",
        "_spans",
        "_spans_version",
    )

    def __init__(self) -> None:
        self.x1 = array("q")
        self.x2 = array("q")
        self.ybot = array("q")
        self.net = array("q")
        self.born = array("q")
        self.died = array("q")
        self.live = bytearray()
        self.order: list[int] = []
        self.keys: list[int] = []
        self.version = 0
        self._spans: list[tuple[int, int, int]] = []
        self._spans_version = -1

    def __len__(self) -> int:
        """Number of *live* intervals (the active-list length)."""
        return len(self.order)

    def rows(self) -> int:
        """Total rows ever allocated, dead ones included."""
        return len(self.x1)

    def alloc(self, x1: int, x2: int, ybot: int, net: int, born: int) -> int:
        """Append a live row; the caller splices it into ``order``."""
        rid = len(self.x1)
        self.x1.append(x1)
        self.x2.append(x2)
        self.ybot.append(ybot)
        self.net.append(net)
        self.born.append(born)
        self.died.append(DIED_OPEN)
        self.live.append(1)
        return rid

    def kill(self, rid: int, stop: int) -> None:
        """Retire a row (expiry or merge consumption) at ``stop``."""
        self.live[rid] = 0
        self.died[rid] = stop

    def spans(self) -> list[tuple[int, int, int]]:
        """Live ``(x1, x2, net)`` tuples in x order, cached by version.

        This is the pure-python engine's view of the layer; the cache
        makes repeated reads of an unchanged layer free, mirroring the
        numpy engine's version-keyed array cache.
        """
        if self._spans_version != self.version:
            x1, x2, net = self.x1, self.x2, self.net
            self._spans = [(x1[r], x2[r], net[r]) for r in self.order]
            self._spans_version = self.version
        return self._spans

    def clear(self) -> None:
        """Drop every row (checkpoint restore starts from empty)."""
        self.__init__()
