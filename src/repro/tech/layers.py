"""Mask layer definitions.

A :class:`Layer` is a lightweight named constant; the NMOS process wiring
(which layers conduct, which form devices) lives in
:mod:`repro.tech.nmos`.  Layers are identified by their CIF short names
(``ND``, ``NP``, ...), following Mead & Conway.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Layer:
    """A mask layer.

    Attributes:
        cif_name: the CIF ``L`` command name, e.g. ``"ND"``.
        description: human-readable layer role.
        conducting: True when geometry on this layer carries signals and
            therefore participates in net formation.
    """

    cif_name: str
    description: str
    conducting: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.cif_name


# The Mead-Conway NMOS layer set used by ACE.
DIFFUSION = Layer("ND", "diffusion", conducting=True)
POLY = Layer("NP", "polysilicon", conducting=True)
METAL = Layer("NM", "metal", conducting=True)
CONTACT = Layer("NC", "contact cut", conducting=False)
IMPLANT = Layer("NI", "depletion implant", conducting=False)
BURIED = Layer("NB", "buried contact", conducting=False)
GLASS = Layer("NG", "overglass opening", conducting=False)

ALL_LAYERS: tuple[Layer, ...] = (
    DIFFUSION,
    POLY,
    METAL,
    CONTACT,
    IMPLANT,
    BURIED,
    GLASS,
)

# The p-well CMOS layer set (see repro.tech.cmos).
CMOS_DIFFUSION = Layer("CD", "diffusion", conducting=True)
CMOS_POLY = Layer("CP", "polysilicon", conducting=True)
CMOS_METAL = Layer("CM", "metal", conducting=True)
CMOS_CONTACT = Layer("CC", "contact cut", conducting=False)
CMOS_WELL = Layer("CW", "p-well", conducting=False)
CMOS_GLASS = Layer("CG", "overglass opening", conducting=False)

CMOS_LAYERS: tuple[Layer, ...] = (
    CMOS_DIFFUSION,
    CMOS_POLY,
    CMOS_METAL,
    CMOS_CONTACT,
    CMOS_WELL,
    CMOS_GLASS,
)

_BY_NAME = {
    layer.cif_name: layer for layer in (*ALL_LAYERS, *CMOS_LAYERS)
}


def layer_by_name(cif_name: str) -> Layer:
    """Look up a layer by CIF name; raises KeyError for unknown layers."""
    try:
        return _BY_NAME[cif_name]
    except KeyError:
        raise KeyError(f"unknown CIF layer {cif_name!r}") from None


def is_known_layer(cif_name: str) -> bool:
    return cif_name in _BY_NAME
