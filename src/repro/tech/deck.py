"""Declarative technology decks: process rules as data, not code.

A :class:`TechnologyDeck` is the serializable description of one
process technology -- the layer set, the channel-formation rule, the
device-type marker rules, the contact/buried union rules, the DRC
lambda deck, and the ERC policy.  Decks are *compiled* into the runtime
:class:`~repro.tech.nmos.Technology` value object by
:func:`compile_deck`, which first runs :func:`validate_deck`: a static
analysis pass over the deck itself that rejects malformed decks
(unknown or duplicate layers, device rules on non-conducting layers,
width entries for undeclared layers, rule-id collisions, uncheckable
rules, missing help or message text) before any geometry is ever read.

Validation findings are ordinary :class:`~repro.diagnostics.Diagnostic`
records (``tool="deck"``), so ``repro-lint --check-deck`` reports them
through the same text/JSON/SARIF writers as every other checker.

The built-in decks live in :mod:`repro.tech.nmos` (Mead & Conway NMOS,
byte-identical to the historical hardwired rules) and
:mod:`repro.tech.cmos` (p-well CMOS); their canonical JSON forms are
shipped under ``src/repro/tech/decks/`` and pinned by tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .layers import Layer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .nmos import Technology

__all__ = [
    "ABSENT_LAYER",
    "BuriedRule",
    "ChannelRule",
    "ContactRule",
    "DECK_RULE_HELP",
    "DeckError",
    "DeviceTypeRule",
    "DrcDeck",
    "ErcDeck",
    "LayerSpec",
    "ScanLayers",
    "TechnologyDeck",
    "compile_deck",
    "deck_from_dict",
    "deck_to_dict",
    "load_deck_file",
    "scan_layers",
    "validate_deck",
]

#: Placeholder CIF name for a layer role a deck does not use (for
#: example CMOS has no buried contact).  The scanline still keys a
#: (permanently empty) table under it; no real CIF layer may use it.
ABSENT_LAYER = "--none--"

# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LayerSpec:
    """One mask layer: CIF name, role description, conduction flag."""

    name: str
    description: str
    conducting: bool


@dataclass(frozen=True)
class ChannelRule:
    """Channel formation: ``diffusion AND gate AND NOT blocker``."""

    diffusion: str
    gate: str
    blocker: "str | None" = None


@dataclass(frozen=True)
class DeviceTypeRule:
    """Maps a marker layer over the channel to a device part name.

    Exactly one rule per deck has ``marker=None`` (the default type a
    bare channel becomes); every other rule names a non-conducting
    marker layer whose presence over the channel selects that type.
    ``polarity`` ("n" or "p") and ``depletion`` feed the electrical
    checker's device-type table.
    """

    name: str
    marker: "str | None"
    polarity: str = "n"
    depletion: bool = False


@dataclass(frozen=True)
class ContactRule:
    """A cut on ``cut`` unions the nets of every ``connects`` layer
    present under it."""

    cut: str
    connects: tuple[str, ...]


@dataclass(frozen=True)
class BuriedRule:
    """A buried window unions the channel's gate and diffusion nets
    (and, via the channel blocker, suppresses the channel)."""

    window: str


@dataclass(frozen=True)
class DrcDeck:
    """The lambda-rule section: which rules run and their parameters.

    ``rules`` lists the enabled rule ids (from the global catalog in
    :mod:`repro.drc.rules`); ``min_width`` / ``min_spacing`` are lambda
    values keyed by declared layer name; ``messages`` holds the exact
    diagnostic text per message key (``{n}`` expands to the lambda
    count), and ``help`` may add help text for deck-specific rule ids.
    """

    rules: tuple[str, ...] = ()
    min_width: dict[str, int] = field(default_factory=dict)
    min_spacing: dict[str, int] = field(default_factory=dict)
    gate_extension: int = 1
    contact_margin: int = 0
    buried_margin: int = 0
    marker_margin: int = 1
    messages: dict[str, str] = field(default_factory=dict)
    help: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class ErcDeck:
    """The electrical-check policy: rail spellings plus the logic
    style -- ``ratio`` (NMOS depletion loads, Mead & Conway k) or
    ``complementary`` (CMOS pull-up/pull-down pairing)."""

    style: str = "ratio"
    min_ratio: float = 4.0
    vdd_names: tuple[str, ...] = ("VDD", "VDD!")
    gnd_names: tuple[str, ...] = ("GND", "GND!", "VSS", "GROUND")


@dataclass(frozen=True)
class TechnologyDeck:
    """The full declarative technology description."""

    name: str
    lambda_: int
    layers: tuple[LayerSpec, ...]
    channel: ChannelRule
    device_types: tuple[DeviceTypeRule, ...]
    contact: ContactRule
    buried: "BuriedRule | None" = None
    ignored: tuple[str, ...] = ()
    drc: DrcDeck = field(default_factory=DrcDeck)
    erc: ErcDeck = field(default_factory=ErcDeck)

    # -- convenience lookups (valid decks only) -------------------------

    def layer(self, name: str) -> "LayerSpec | None":
        for spec in self.layers:
            if spec.name == name:
                return spec
        return None

    def conducting_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.layers if s.conducting)

    def routing_names(self) -> tuple[str, ...]:
        """Conducting layers that are neither the diffusion nor the gate."""
        special = {self.channel.diffusion, self.channel.gate}
        return tuple(
            n for n in self.conducting_names() if n not in special
        )

    def default_device(self) -> DeviceTypeRule:
        for rule in self.device_types:
            if rule.marker is None:
                return rule
        raise ValueError(f"deck {self.name!r} has no default device type")

    def marked_device(self) -> "DeviceTypeRule | None":
        for rule in self.device_types:
            if rule.marker is not None:
                return rule
        return None

    def device_type(self, kind: str) -> "DeviceTypeRule | None":
        for rule in self.device_types:
            if rule.name == kind:
                return rule
        return None


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

#: Stable ids of the deck-validation rules, with their help text --
#: surfaced by ``repro-lint --list-rules`` and as SARIF rule metadata.
DECK_RULE_HELP: dict[str, str] = {
    "deck.duplicate-layer": "two layer declarations share one CIF name",
    "deck.unknown-layer": "a rule references an undeclared layer",
    "deck.nonconducting-device": (
        "a channel or contact rule references a non-conducting layer"
    ),
    "deck.conducting-marker": (
        "a marker, blocker, cut, or window layer is declared conducting"
    ),
    "deck.undeclared-rule-layer": (
        "a width/spacing entry names an undeclared layer"
    ),
    "deck.duplicate-device": (
        "two device types share a name or a marker layer"
    ),
    "deck.no-default-device": (
        "not exactly one device type with no marker (the bare-channel "
        "default)"
    ),
    "deck.bad-channel": (
        "the channel rule is degenerate or leaves no single routing layer"
    ),
    "deck.rule-collision": "a rule id is enabled more than once",
    "deck.uncheckable-rule": (
        "an enabled rule has no checker or is missing its required layers"
    ),
    "deck.missing-help": "an enabled rule id has no help text",
    "deck.missing-message": (
        "an enabled rule has no diagnostic message template"
    ),
    "deck.bad-erc": "the ERC policy is malformed",
}

#: Message-template keys each DRC rule id requires, when enabled.
_RULE_MESSAGE_KEYS: dict[str, tuple[str, ...]] = {
    "drc.gate-extension": ("gate-extension",),
    "drc.contact-enclosure": ("contact-enclosure",),
    "drc.buried-enclosure": ("buried-cover", "buried-overlap"),
    "drc.implant-coverage": ("marker-coverage",),
}

_ERC_STYLES = ("ratio", "complementary")


def validate_deck(deck: TechnologyDeck) -> "Any":
    """Statically check ``deck``; returns a diagnostics CheckReport.

    Every finding is an ERROR carrying one of the :data:`DECK_RULE_HELP`
    rule ids; an empty report means the deck compiles.
    """
    from ..diagnostics import CheckReport, Diagnostic, Severity

    findings: list[Diagnostic] = []

    def flag(rule: str, message: str, layer: "str | None" = None) -> None:
        findings.append(
            Diagnostic(Severity.ERROR, rule, message, tool="deck", layer=layer)
        )

    declared: dict[str, LayerSpec] = {}
    for spec in deck.layers:
        if spec.name in declared:
            flag(
                "deck.duplicate-layer",
                f"layer {spec.name!r} is declared twice",
                layer=spec.name,
            )
        else:
            declared[spec.name] = spec
        if spec.name == ABSENT_LAYER:
            flag(
                "deck.duplicate-layer",
                f"layer name {ABSENT_LAYER!r} is reserved",
                layer=spec.name,
            )

    def known(name: "str | None", where: str) -> bool:
        if name is None:
            return False
        if name not in declared:
            flag(
                "deck.unknown-layer",
                f"{where} references undeclared layer {name!r}",
                layer=name,
            )
            return False
        return True

    def conducting(name: str, where: str) -> None:
        if known(name, where) and not declared[name].conducting:
            flag(
                "deck.nonconducting-device",
                f"{where} layer {name!r} must be conducting",
                layer=name,
            )

    def insulating(name: "str | None", where: str) -> None:
        if name is None:
            return
        if known(name, where) and declared[name].conducting:
            flag(
                "deck.conducting-marker",
                f"{where} layer {name!r} must not be conducting",
                layer=name,
            )

    # Channel rule: two distinct conducting layers, optional blocker.
    conducting(deck.channel.diffusion, "channel diffusion")
    conducting(deck.channel.gate, "channel gate")
    insulating(deck.channel.blocker, "channel blocker")
    if deck.channel.diffusion == deck.channel.gate:
        flag(
            "deck.bad-channel",
            "channel diffusion and gate are the same layer "
            f"({deck.channel.diffusion!r})",
        )
    else:
        routing = tuple(
            n
            for n in deck.routing_names()
            if n in declared
        )
        if len(routing) != 1:
            flag(
                "deck.bad-channel",
                "the scanline needs exactly one conducting routing layer "
                f"besides the channel pair; deck declares {len(routing)}",
            )

    if deck.channel.blocker is not None:
        window = deck.buried.window if deck.buried else None
        if window != deck.channel.blocker:
            flag(
                "deck.bad-channel",
                "the channel blocker must be the buried window layer "
                "(the scanline implements blocking through the buried "
                "table)",
                layer=deck.channel.blocker,
            )

    # Device types: unique names/markers, exactly one default.
    seen_names: set[str] = set()
    seen_markers: set[str] = set()
    defaults = 0
    for rule in deck.device_types:
        if rule.name in seen_names:
            flag(
                "deck.duplicate-device",
                f"device type {rule.name!r} is declared twice",
            )
        seen_names.add(rule.name)
        if rule.marker is None:
            defaults += 1
        else:
            insulating(rule.marker, f"device type {rule.name!r} marker")
            if rule.marker in seen_markers:
                flag(
                    "deck.duplicate-device",
                    f"marker {rule.marker!r} selects two device types",
                    layer=rule.marker,
                )
            seen_markers.add(rule.marker)
        if rule.polarity not in ("n", "p"):
            flag(
                "deck.duplicate-device",
                f"device type {rule.name!r} polarity must be 'n' or 'p', "
                f"not {rule.polarity!r}",
            )
    if defaults != 1:
        flag(
            "deck.no-default-device",
            f"decks need exactly one marker-less device type; "
            f"found {defaults}",
        )
    if not deck.device_types:
        pass  # already flagged by the defaults count

    # Contact and buried rules.
    insulating(deck.contact.cut, "contact cut")
    if not deck.contact.connects:
        flag(
            "deck.nonconducting-device",
            "contact rule connects no layers",
            layer=deck.contact.cut,
        )
    for name in deck.contact.connects:
        conducting(name, "contact connects")
    if deck.buried is not None:
        insulating(deck.buried.window, "buried window")
    for name in deck.ignored:
        known(name, "ignored list")

    # DRC dimensional entries must name declared layers.
    for table, label in (
        (deck.drc.min_width, "min_width"),
        (deck.drc.min_spacing, "min_spacing"),
    ):
        for name in table:
            if name not in declared:
                flag(
                    "deck.undeclared-rule-layer",
                    f"{label} entry for undeclared layer {name!r}",
                    layer=name,
                )

    # Enabled rules: known to the checker, unique, helped, messaged,
    # and actually checkable with this deck's layer roles.
    from ..drc.rules import ALL_RULES, RULE_HELP

    help_index = {**RULE_HELP, **deck.drc.help}
    seen_rules: set[str] = set()
    for rule_id in deck.drc.rules:
        if rule_id in seen_rules:
            flag(
                "deck.rule-collision",
                f"rule {rule_id!r} is enabled more than once",
            )
            continue
        seen_rules.add(rule_id)
        if rule_id not in help_index:
            flag(
                "deck.missing-help",
                f"enabled rule {rule_id!r} has no help text",
            )
        if rule_id not in ALL_RULES:
            flag(
                "deck.uncheckable-rule",
                f"rule {rule_id!r} has no checker implementation",
            )
            continue
        if rule_id == "drc.buried-enclosure" and deck.buried is None:
            flag(
                "deck.uncheckable-rule",
                "drc.buried-enclosure is enabled but the deck has no "
                "buried rule",
            )
        if rule_id == "drc.implant-coverage" and deck.marked_device() is None:
            flag(
                "deck.uncheckable-rule",
                "drc.implant-coverage is enabled but no device type "
                "declares a marker layer",
            )
        for key in _RULE_MESSAGE_KEYS.get(rule_id, ()):
            if key not in deck.drc.messages:
                flag(
                    "deck.missing-message",
                    f"rule {rule_id!r} needs message template {key!r}",
                )

    # ERC policy.
    if deck.erc.style not in _ERC_STYLES:
        flag(
            "deck.bad-erc",
            f"unknown ERC style {deck.erc.style!r} "
            f"(expected one of {', '.join(_ERC_STYLES)})",
        )
    if deck.erc.style == "ratio" and deck.erc.min_ratio <= 0:
        flag(
            "deck.bad-erc",
            f"ratio style needs a positive min_ratio, not "
            f"{deck.erc.min_ratio!r}",
        )
    if not deck.erc.vdd_names or not deck.erc.gnd_names:
        flag("deck.bad-erc", "rail name lists must not be empty")

    report = CheckReport(diagnostics=findings, artifact=deck.name)
    return report.sorted()


class DeckError(ValueError):
    """A deck failed validation (or could not be parsed).

    ``report`` carries the individual diagnostics when validation ran.
    """

    def __init__(self, message: str, report: "Any" = None) -> None:
        super().__init__(message)
        self.report = report


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------


def compile_deck(deck: TechnologyDeck) -> "Technology":
    """Validate ``deck`` and build the runtime Technology from it.

    Raises :class:`DeckError` (carrying the validation report) when the
    deck is malformed.  The compiled Technology keeps a reference to its
    deck, which is where the scanline, DRC, and ERC read channel,
    blocker, marker, and policy data from.
    """
    from .nmos import Technology

    report = validate_deck(deck)
    if report.errors:
        lines = "; ".join(d.message for d in report.errors[:4])
        raise DeckError(
            f"technology deck {deck.name!r} failed validation "
            f"({len(report.errors)} finding(s)): {lines}",
            report=report,
        )

    layer_of = {
        spec.name: Layer(spec.name, spec.description, spec.conducting)
        for spec in deck.layers
    }
    absent = Layer(ABSENT_LAYER, "absent layer role", conducting=False)

    def resolve(name: "str | None") -> Layer:
        return layer_of[name] if name is not None else absent

    routing = deck.routing_names()
    marked = deck.marked_device()
    default = deck.default_device()
    return Technology(
        name=deck.name,
        lambda_=deck.lambda_,
        conducting_layers=(
            *(layer_of[n] for n in routing),
            layer_of[deck.channel.gate],
            layer_of[deck.channel.diffusion],
        ),
        channel_layers=(
            layer_of[deck.channel.diffusion],
            layer_of[deck.channel.gate],
        ),
        channel_blocker=resolve(deck.channel.blocker),
        depletion_marker=resolve(marked.marker if marked else None),
        contact_layer=layer_of[deck.contact.cut],
        buried_layer=resolve(deck.buried.window if deck.buried else None),
        ignored_layers=tuple(layer_of[n] for n in deck.ignored),
        device_names={
            False: default.name,
            True: (marked or default).name,
        },
        deck=deck,
    )


# ----------------------------------------------------------------------
# the scanline's layer-role view
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScanLayers:
    """Layer roles resolved for one extraction run.

    The scanline host, both strip engines, and the DRC checker read
    layer names through this view; :func:`scan_layers` fills it from
    the compiled deck (or, for hand-built Technology objects without a
    deck, from the legacy attributes).
    """

    metal: str
    poly: str
    diff: str
    contact: str
    marker: str
    blocker: str
    buried: str
    net_layers: frozenset[str]
    ignored: frozenset[str]

    def tracked(self) -> set[str]:
        return {
            self.metal,
            self.poly,
            self.diff,
            self.contact,
            self.marker,
            self.blocker,
            self.buried,
        }


def scan_layers(tech: "Technology") -> ScanLayers:
    """Resolve the layer roles the scanline tracks for ``tech``."""
    deck = tech.deck
    if deck is not None:
        routing = deck.routing_names()
        marked = deck.marked_device()
        return ScanLayers(
            metal=routing[0],
            poly=deck.channel.gate,
            diff=deck.channel.diffusion,
            contact=deck.contact.cut,
            marker=(
                marked.marker
                if marked and marked.marker is not None
                else ABSENT_LAYER
            ),
            blocker=deck.channel.blocker or ABSENT_LAYER,
            buried=deck.buried.window if deck.buried else ABSENT_LAYER,
            net_layers=frozenset((*routing, deck.channel.gate)),
            ignored=frozenset(deck.ignored),
        )
    return ScanLayers(
        metal=tech.conducting_layers[0].cif_name,
        poly=tech.channel_layers[1].cif_name,
        diff=tech.channel_layers[0].cif_name,
        contact=tech.contact_layer.cif_name,
        marker=tech.depletion_marker.cif_name,
        blocker=tech.channel_blocker.cif_name,
        buried=tech.buried_layer.cif_name,
        net_layers=frozenset(
            layer.cif_name
            for layer in tech.conducting_layers
            if layer.cif_name != tech.channel_layers[0].cif_name
        ),
        ignored=frozenset(
            layer.cif_name for layer in tech.ignored_layers
        ),
    )


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------

_SCHEMA_VERSION = 1


def deck_to_dict(deck: TechnologyDeck) -> dict:
    """The canonical JSON-compatible form of ``deck``."""
    return {
        "schema": _SCHEMA_VERSION,
        "name": deck.name,
        "lambda": deck.lambda_,
        "layers": [
            {
                "name": s.name,
                "description": s.description,
                "conducting": s.conducting,
            }
            for s in deck.layers
        ],
        "channel": {
            "diffusion": deck.channel.diffusion,
            "gate": deck.channel.gate,
            "blocker": deck.channel.blocker,
        },
        "device_types": [
            {
                "name": r.name,
                "marker": r.marker,
                "polarity": r.polarity,
                "depletion": r.depletion,
            }
            for r in deck.device_types
        ],
        "contact": {
            "cut": deck.contact.cut,
            "connects": list(deck.contact.connects),
        },
        "buried": (
            {"window": deck.buried.window} if deck.buried else None
        ),
        "ignored": list(deck.ignored),
        "drc": {
            "rules": list(deck.drc.rules),
            "min_width": dict(deck.drc.min_width),
            "min_spacing": dict(deck.drc.min_spacing),
            "gate_extension": deck.drc.gate_extension,
            "contact_margin": deck.drc.contact_margin,
            "buried_margin": deck.drc.buried_margin,
            "marker_margin": deck.drc.marker_margin,
            "messages": dict(deck.drc.messages),
            "help": dict(deck.drc.help),
        },
        "erc": {
            "style": deck.erc.style,
            "min_ratio": deck.erc.min_ratio,
            "vdd_names": list(deck.erc.vdd_names),
            "gnd_names": list(deck.erc.gnd_names),
        },
    }


def deck_from_dict(data: dict) -> TechnologyDeck:
    """Parse the :func:`deck_to_dict` form; raises DeckError on shape
    errors (content errors are the validator's job)."""
    try:
        schema = data.get("schema", _SCHEMA_VERSION)
        if schema != _SCHEMA_VERSION:
            raise DeckError(f"unsupported deck schema version {schema!r}")
        drc = data.get("drc", {})
        erc = data.get("erc", {})
        buried = data.get("buried")
        return TechnologyDeck(
            name=str(data["name"]),
            lambda_=int(data["lambda"]),
            layers=tuple(
                LayerSpec(
                    name=str(s["name"]),
                    description=str(s.get("description", "")),
                    conducting=bool(s["conducting"]),
                )
                for s in data["layers"]
            ),
            channel=ChannelRule(
                diffusion=str(data["channel"]["diffusion"]),
                gate=str(data["channel"]["gate"]),
                blocker=(
                    None
                    if data["channel"].get("blocker") is None
                    else str(data["channel"]["blocker"])
                ),
            ),
            device_types=tuple(
                DeviceTypeRule(
                    name=str(r["name"]),
                    marker=(
                        None
                        if r.get("marker") is None
                        else str(r["marker"])
                    ),
                    polarity=str(r.get("polarity", "n")),
                    depletion=bool(r.get("depletion", False)),
                )
                for r in data["device_types"]
            ),
            contact=ContactRule(
                cut=str(data["contact"]["cut"]),
                connects=tuple(
                    str(n) for n in data["contact"]["connects"]
                ),
            ),
            buried=(
                BuriedRule(window=str(buried["window"])) if buried else None
            ),
            ignored=tuple(str(n) for n in data.get("ignored", ())),
            drc=DrcDeck(
                rules=tuple(str(r) for r in drc.get("rules", ())),
                min_width={
                    str(k): int(v)
                    for k, v in drc.get("min_width", {}).items()
                },
                min_spacing={
                    str(k): int(v)
                    for k, v in drc.get("min_spacing", {}).items()
                },
                gate_extension=int(drc.get("gate_extension", 1)),
                contact_margin=int(drc.get("contact_margin", 0)),
                buried_margin=int(drc.get("buried_margin", 0)),
                marker_margin=int(drc.get("marker_margin", 1)),
                messages={
                    str(k): str(v)
                    for k, v in drc.get("messages", {}).items()
                },
                help={
                    str(k): str(v)
                    for k, v in drc.get("help", {}).items()
                },
            ),
            erc=ErcDeck(
                style=str(erc.get("style", "ratio")),
                min_ratio=float(erc.get("min_ratio", 4.0)),
                vdd_names=tuple(
                    str(n) for n in erc.get("vdd_names", ("VDD", "VDD!"))
                ),
                gnd_names=tuple(
                    str(n)
                    for n in erc.get(
                        "gnd_names", ("GND", "GND!", "VSS", "GROUND")
                    )
                ),
            ),
        )
    except DeckError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise DeckError(f"malformed technology deck: {exc!r}") from exc


def load_deck_file(path: str) -> TechnologyDeck:
    """Load a deck from a JSON file (shape-checked, not yet validated)."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except json.JSONDecodeError as exc:
        raise DeckError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise DeckError(f"{path}: a deck file must hold a JSON object")
    return deck_from_dict(data)
