"""A p-well CMOS technology deck.

The deck machinery was designed so CMOS is *data*, not new extractor
code: the channel rule is still diffusion AND gate, there is simply no
buried contact (so no channel blocker), and the device-type marker rule
reuses the implant machinery -- the p-well layer ``CW`` plays the role
the depletion implant plays in NMOS.  A channel inside the well is an
n-channel enhancement device (``nEnh``); a channel outside it is
p-channel (``pEnh``).  There are no depletion loads, so the electrical
checker runs in ``complementary`` style: every driven output needs both
a pull-up path to VDD through p devices and a pull-down path to GND
through n devices, and ratioed (pseudo-NMOS) structures are flagged
instead of ratio-checked.

Layer names follow the CIF convention of a ``C`` prefix: ``CM`` metal,
``CP`` poly, ``CD`` diffusion, ``CC`` contact cut, ``CW`` p-well,
``CG`` overglass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .nmos import DEFAULT_LAMBDA, Technology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .deck import TechnologyDeck


def cmos_deck(lambda_: int = DEFAULT_LAMBDA) -> "TechnologyDeck":
    """The p-well CMOS deck, as declarative data."""
    from .deck import (
        ChannelRule,
        ContactRule,
        DeviceTypeRule,
        DrcDeck,
        ErcDeck,
        LayerSpec,
        TechnologyDeck,
    )

    return TechnologyDeck(
        name="cmos",
        lambda_=lambda_,
        layers=(
            LayerSpec("CM", "metal", conducting=True),
            LayerSpec("CP", "polysilicon", conducting=True),
            LayerSpec("CD", "diffusion", conducting=True),
            LayerSpec("CC", "contact cut", conducting=False),
            LayerSpec("CW", "p-well", conducting=False),
            LayerSpec("CG", "overglass opening", conducting=False),
        ),
        channel=ChannelRule(diffusion="CD", gate="CP", blocker=None),
        device_types=(
            DeviceTypeRule("pEnh", marker=None, polarity="p"),
            DeviceTypeRule("nEnh", marker="CW", polarity="n"),
        ),
        contact=ContactRule(cut="CC", connects=("CM", "CP", "CD")),
        buried=None,
        ignored=("CG",),
        drc=DrcDeck(
            rules=(
                "drc.width",
                "drc.spacing",
                "drc.gate-extension",
                "drc.contact-enclosure",
                "drc.implant-coverage",
            ),
            min_width={
                "CD": 2,
                "CP": 2,
                "CM": 3,
                "CC": 2,
                "CW": 4,
            },
            min_spacing={
                "CD": 3,
                "CP": 2,
                "CM": 1,
                "CC": 1,
                "CW": 4,
            },
            gate_extension=1,
            contact_margin=0,
            buried_margin=0,
            marker_margin=2,
            messages={
                "gate-extension": (
                    "channel edge lacks the {n} lambda poly or "
                    "diffusion extension"
                ),
                "contact-enclosure": (
                    "contact cut not fully covered by metal"
                ),
                "marker-coverage": (
                    "n-channel device not covered by the p-well with "
                    "a {n} lambda margin"
                ),
            },
        ),
        erc=ErcDeck(
            style="complementary",
            min_ratio=4.0,
            vdd_names=("VDD", "VDD!"),
            gnd_names=("GND", "GND!", "VSS", "GROUND"),
        ),
    )


def CMOS(lambda_: int = DEFAULT_LAMBDA) -> Technology:
    """The p-well CMOS technology at the given lambda."""
    from .deck import compile_deck

    return compile_deck(cmos_deck(lambda_))
