"""The NMOS process rules ACE extracts against.

ACE deliberately embeds no circuit *model* (capacitance, resistance), but
it does embed the NMOS *topology* rules:

* **Channel formation** -- diffusion AND poly AND NOT buried is a
  transistor channel; the channel interrupts conduction on the diffusion
  layer (section 3: the four "interacting layers" are diffusion, poly,
  buried and implant).
* **Device type** -- implant over the channel makes a depletion device,
  otherwise enhancement.
* **Contacts** -- a contact cut unions the nets of every conducting layer
  present under it (metal-poly or metal-diffusion in practice; a butting
  contact unions all three).
* **Buried contacts** -- buried over poly AND diffusion unions the poly
  and diffusion nets (and, by the channel rule, suppresses the channel).

Since the deck refactor these rules are *data*: :func:`nmos_deck` is the
declarative :class:`~repro.tech.deck.TechnologyDeck` and :func:`NMOS`
compiles it (the compiled Technology is byte-identical in behavior to
the historical hardwired one).  The lambda value only matters to the
raster baseline (grid pitch) and the workload generators; ACE itself is
grid-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from . import layers
from .layers import Layer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .deck import TechnologyDeck

#: Default lambda in CIF centimicrons (2.5 micron process, Mead-Conway).
DEFAULT_LAMBDA = 250


@dataclass(frozen=True)
class Technology:
    """A bundle of process rules, normally compiled from a deck.

    Kept as a value object (rather than module constants) so tests and the
    HEXT back-end can construct reduced-layer variants.  When ``deck`` is
    set (every deck-compiled instance), the scanline, DRC, and ERC read
    channel/marker/policy data from it; hand-built instances without a
    deck fall back to the attribute-derived roles.
    """

    name: str = "nmos"
    lambda_: int = DEFAULT_LAMBDA
    conducting_layers: tuple[Layer, ...] = (
        layers.METAL,
        layers.POLY,
        layers.DIFFUSION,
    )
    channel_layers: tuple[Layer, Layer] = (layers.DIFFUSION, layers.POLY)
    channel_blocker: Layer = layers.BURIED
    depletion_marker: Layer = layers.IMPLANT
    contact_layer: Layer = layers.CONTACT
    buried_layer: Layer = layers.BURIED
    ignored_layers: tuple[Layer, ...] = (layers.GLASS,)
    #: Transistor part names used in wirelists, by depletion flag.
    device_names: dict = field(
        default_factory=lambda: {False: "nEnh", True: "nDep"}
    )
    #: The declarative deck this Technology was compiled from, if any.
    deck: "TechnologyDeck | None" = None

    def all_layers(self) -> tuple[Layer, ...]:
        seen: list[Layer] = []
        for layer in (
            *self.conducting_layers,
            *self.channel_layers,
            self.channel_blocker,
            self.depletion_marker,
            self.contact_layer,
            self.buried_layer,
            *self.ignored_layers,
        ):
            if layer not in seen:
                seen.append(layer)
        return tuple(seen)

    def is_relevant(self, layer: Layer) -> bool:
        """Layers the extractor must track (everything but ignored)."""
        return layer not in self.ignored_layers

    def device_name(self, depletion: bool) -> str:
        return self.device_names[depletion]


def nmos_deck(lambda_: int = DEFAULT_LAMBDA) -> "TechnologyDeck":
    """The Mead & Conway NMOS deck, as declarative data.

    Compiling this deck reproduces the historical hardwired Technology
    and DRC rules byte-for-byte (layer order, device names, lambda
    values, and diagnostic message text all pinned by goldens).
    """
    from .deck import (
        BuriedRule,
        ChannelRule,
        ContactRule,
        DeviceTypeRule,
        DrcDeck,
        ErcDeck,
        LayerSpec,
        TechnologyDeck,
    )

    return TechnologyDeck(
        name="nmos",
        lambda_=lambda_,
        layers=(
            LayerSpec("NM", "metal", conducting=True),
            LayerSpec("NP", "polysilicon", conducting=True),
            LayerSpec("ND", "diffusion", conducting=True),
            LayerSpec("NC", "contact cut", conducting=False),
            LayerSpec("NI", "depletion implant", conducting=False),
            LayerSpec("NB", "buried contact", conducting=False),
            LayerSpec("NG", "overglass opening", conducting=False),
        ),
        channel=ChannelRule(diffusion="ND", gate="NP", blocker="NB"),
        device_types=(
            DeviceTypeRule("nEnh", marker=None, polarity="n"),
            DeviceTypeRule(
                "nDep", marker="NI", polarity="n", depletion=True
            ),
        ),
        contact=ContactRule(cut="NC", connects=("NM", "NP", "ND")),
        buried=BuriedRule(window="NB"),
        ignored=("NG",),
        drc=DrcDeck(
            rules=(
                "drc.width",
                "drc.spacing",
                "drc.gate-extension",
                "drc.contact-enclosure",
                "drc.buried-enclosure",
                "drc.implant-coverage",
            ),
            min_width={
                "ND": 2,
                "NP": 2,
                "NM": 3,
                "NC": 2,
                "NB": 2,
                "NI": 2,
            },
            min_spacing={
                "ND": 3,
                "NP": 2,
                "NM": 1,
                "NC": 1,
                "NB": 2,
                "NI": 2,
            },
            gate_extension=1,
            contact_margin=0,
            buried_margin=0,
            marker_margin=1,
            messages={
                "gate-extension": (
                    "channel edge lacks the {n} lambda poly or "
                    "diffusion extension"
                ),
                "contact-enclosure": (
                    "contact cut not fully covered by metal"
                ),
                "buried-cover": (
                    "buried window not fully covered by diffusion"
                ),
                "buried-overlap": "buried window never overlaps poly",
                "marker-coverage": (
                    "depletion channel not covered by implant with a "
                    "{n} lambda margin"
                ),
            },
        ),
        erc=ErcDeck(
            style="ratio",
            min_ratio=4.0,
            vdd_names=("VDD", "VDD!"),
            gnd_names=("GND", "GND!", "VSS", "GROUND"),
        ),
    )


def NMOS(lambda_: int = DEFAULT_LAMBDA) -> Technology:
    """The standard NMOS technology at the given lambda."""
    from .deck import compile_deck

    return compile_deck(nmos_deck(lambda_))
