"""The NMOS process rules ACE extracts against.

ACE deliberately embeds no circuit *model* (capacitance, resistance), but
it does embed the NMOS *topology* rules:

* **Channel formation** -- diffusion AND poly AND NOT buried is a
  transistor channel; the channel interrupts conduction on the diffusion
  layer (section 3: the four "interacting layers" are diffusion, poly,
  buried and implant).
* **Device type** -- implant over the channel makes a depletion device,
  otherwise enhancement.
* **Contacts** -- a contact cut unions the nets of every conducting layer
  present under it (metal-poly or metal-diffusion in practice; a butting
  contact unions all three).
* **Buried contacts** -- buried over poly AND diffusion unions the poly
  and diffusion nets (and, by the channel rule, suppresses the channel).

The lambda value only matters to the raster baseline (grid pitch) and the
workload generators; ACE itself is grid-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import layers
from .layers import Layer

#: Default lambda in CIF centimicrons (2.5 micron process, Mead-Conway).
DEFAULT_LAMBDA = 250


@dataclass(frozen=True)
class Technology:
    """A bundle of process rules; NMOS() is the only instance ACE ships.

    Kept as a value object (rather than module constants) so tests and the
    HEXT back-end can construct reduced-layer variants.
    """

    name: str = "nmos"
    lambda_: int = DEFAULT_LAMBDA
    conducting_layers: tuple[Layer, ...] = (
        layers.METAL,
        layers.POLY,
        layers.DIFFUSION,
    )
    channel_layers: tuple[Layer, Layer] = (layers.DIFFUSION, layers.POLY)
    channel_blocker: Layer = layers.BURIED
    depletion_marker: Layer = layers.IMPLANT
    contact_layer: Layer = layers.CONTACT
    buried_layer: Layer = layers.BURIED
    ignored_layers: tuple[Layer, ...] = (layers.GLASS,)
    #: Transistor part names used in wirelists, by depletion flag.
    device_names: dict = field(
        default_factory=lambda: {False: "nEnh", True: "nDep"}
    )

    def all_layers(self) -> tuple[Layer, ...]:
        seen: list[Layer] = []
        for layer in (
            *self.conducting_layers,
            *self.channel_layers,
            self.channel_blocker,
            self.depletion_marker,
            self.contact_layer,
            self.buried_layer,
            *self.ignored_layers,
        ):
            if layer not in seen:
                seen.append(layer)
        return tuple(seen)

    def is_relevant(self, layer: Layer) -> bool:
        """Layers the extractor must track (everything but ignored)."""
        return layer not in self.ignored_layers

    def device_name(self, depletion: bool) -> str:
        return self.device_names[depletion]


def NMOS(lambda_: int = DEFAULT_LAMBDA) -> Technology:
    """The standard NMOS technology at the given lambda."""
    return Technology(lambda_=lambda_)
