"""Technology descriptions: layers, decks, and deck compilation."""

from .cmos import CMOS, cmos_deck
from .deck import (
    ABSENT_LAYER,
    DECK_RULE_HELP,
    DeckError,
    ScanLayers,
    TechnologyDeck,
    compile_deck,
    deck_from_dict,
    deck_to_dict,
    load_deck_file,
    scan_layers,
    validate_deck,
)
from .layers import (
    ALL_LAYERS,
    BURIED,
    CMOS_LAYERS,
    CONTACT,
    DIFFUSION,
    GLASS,
    IMPLANT,
    METAL,
    POLY,
    Layer,
    is_known_layer,
    layer_by_name,
)
from .nmos import DEFAULT_LAMBDA, NMOS, Technology, nmos_deck

#: Builtin deck factories by name; ``repro-lint --deck nmos`` and the
#: service's ``deck`` option resolve through this registry.
BUILTIN_DECKS = {
    "nmos": nmos_deck,
    "cmos": cmos_deck,
}


def deck_by_name(name: str, lambda_: int = DEFAULT_LAMBDA) -> TechnologyDeck:
    """A builtin deck by registry name; raises KeyError when unknown."""
    try:
        factory = BUILTIN_DECKS[name]
    except KeyError:
        raise KeyError(
            f"unknown technology deck {name!r}; "
            f"choose from {sorted(BUILTIN_DECKS)}"
        ) from None
    return factory(lambda_)


def technology_by_name(
    name: str, lambda_: int = DEFAULT_LAMBDA
) -> Technology:
    """Compile a builtin deck by name into a Technology."""
    return compile_deck(deck_by_name(name, lambda_))


__all__ = [
    "ABSENT_LAYER",
    "ALL_LAYERS",
    "BUILTIN_DECKS",
    "BURIED",
    "CMOS",
    "CMOS_LAYERS",
    "CONTACT",
    "DECK_RULE_HELP",
    "DEFAULT_LAMBDA",
    "DIFFUSION",
    "DeckError",
    "GLASS",
    "IMPLANT",
    "METAL",
    "NMOS",
    "POLY",
    "Layer",
    "ScanLayers",
    "Technology",
    "TechnologyDeck",
    "cmos_deck",
    "compile_deck",
    "deck_by_name",
    "deck_from_dict",
    "deck_to_dict",
    "is_known_layer",
    "layer_by_name",
    "load_deck_file",
    "nmos_deck",
    "scan_layers",
    "technology_by_name",
    "validate_deck",
]
