"""NMOS technology description: layers and device-formation rules."""

from .layers import (
    ALL_LAYERS,
    BURIED,
    CONTACT,
    DIFFUSION,
    GLASS,
    IMPLANT,
    METAL,
    POLY,
    Layer,
    is_known_layer,
    layer_by_name,
)
from .nmos import DEFAULT_LAMBDA, NMOS, Technology

__all__ = [
    "ALL_LAYERS",
    "BURIED",
    "CONTACT",
    "DEFAULT_LAMBDA",
    "DIFFUSION",
    "GLASS",
    "IMPLANT",
    "METAL",
    "NMOS",
    "POLY",
    "Layer",
    "Technology",
    "is_known_layer",
    "layer_by_name",
]
