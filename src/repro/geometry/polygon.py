"""Simple polygons on the integer grid.

CIF ``P`` commands describe arbitrary simple polygons.  ACE's front-end
never hands polygons to the back-end: everything is fractured into
axis-aligned boxes first (:mod:`repro.geometry.fracture`).  This module
holds the polygon value type and the point-sampling predicates the
fracturer needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .box import Box


@dataclass(frozen=True)
class Polygon:
    """A simple polygon given by its vertex ring (implicitly closed).

    Vertices are integer points.  The ring may wind in either direction;
    degenerate (fewer than 3 distinct vertices, or zero-area) polygons are
    rejected.
    """

    vertices: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise ValueError("polygon needs at least 3 vertices")
        if abs(self.signed_area2()) == 0:
            raise ValueError("polygon has zero area")

    @classmethod
    def from_points(cls, points: "list[tuple[int, int]]") -> "Polygon":
        return cls(tuple((int(x), int(y)) for x, y in points))

    @classmethod
    def rectangle(cls, box: Box) -> "Polygon":
        return cls(
            (
                (box.xmin, box.ymin),
                (box.xmax, box.ymin),
                (box.xmax, box.ymax),
                (box.xmin, box.ymax),
            )
        )

    def signed_area2(self) -> int:
        """Twice the signed area (shoelace); positive when CCW."""
        total = 0
        pts = self.vertices
        for i, (x1, y1) in enumerate(pts):
            x2, y2 = pts[(i + 1) % len(pts)]
            total += x1 * y2 - x2 * y1
        return total

    @property
    def area(self) -> float:
        return abs(self.signed_area2()) / 2

    def bbox(self) -> Box:
        xs = [x for x, _ in self.vertices]
        ys = [y for _, y in self.vertices]
        return Box(min(xs), min(ys), max(xs), max(ys))

    def is_manhattan(self) -> bool:
        """True when every edge is axis-parallel (exact fracture possible)."""
        pts = self.vertices
        for i, (x1, y1) in enumerate(pts):
            x2, y2 = pts[(i + 1) % len(pts)]
            if x1 != x2 and y1 != y2:
                return False
        return True

    def crossings_at(self, y: float) -> list[float]:
        """Sorted x coordinates where edges cross the horizontal line ``y``.

        Horizontal edges are ignored; sampling at mid-slab heights (never
        at a vertex y) keeps the even-odd pairing well defined.
        """
        xs: list[float] = []
        pts = self.vertices
        for i, (x1, y1) in enumerate(pts):
            x2, y2 = pts[(i + 1) % len(pts)]
            if y1 == y2:
                continue
            lo, hi = (y1, y2) if y1 < y2 else (y2, y1)
            if lo < y < hi:
                xs.append(x1 + (x2 - x1) * (y - y1) / (y2 - y1))
        xs.sort()
        return xs
