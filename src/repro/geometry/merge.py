"""Region algebra over box collections.

Nets and channels accumulate geometry as loose, overlapping box lists; the
utilities here canonicalize those lists so areas, perimeters, and equality
checks are well defined regardless of how the region was assembled.
"""

from __future__ import annotations

from .box import Box


def normalize_region(boxes: "list[Box]") -> list[Box]:
    """Canonical slab decomposition of the union of ``boxes``.

    The result is a disjoint set of boxes covering exactly the same
    region, cut at every distinct y where any input box starts or stops,
    with maximal x-runs inside each slab, then vertically coalesced.  Two
    box lists cover the same region iff their normalizations are equal.
    """
    if not boxes:
        return []
    ys = sorted({b.ymin for b in boxes} | {b.ymax for b in boxes})
    out: list[Box] = []
    for y0, y1 in zip(ys, ys[1:]):
        spans = sorted(
            (b.xmin, b.xmax) for b in boxes if b.ymin < y1 and b.ymax > y0
        )
        if not spans:
            continue
        cur_lo, cur_hi = spans[0]
        for lo, hi in spans[1:]:
            if lo <= cur_hi:
                cur_hi = max(cur_hi, hi)
            else:
                out.append(Box(cur_lo, y0, cur_hi, y1))
                cur_lo, cur_hi = lo, hi
        out.append(Box(cur_lo, y0, cur_hi, y1))
    return _coalesce(out)


def _coalesce(boxes: list[Box]) -> list[Box]:
    boxes = sorted(boxes, key=lambda b: (b.xmin, b.xmax, b.ymin))
    merged: list[Box] = []
    for box in boxes:
        if (
            merged
            and merged[-1].xmin == box.xmin
            and merged[-1].xmax == box.xmax
            and merged[-1].ymax == box.ymin
        ):
            merged[-1] = Box(box.xmin, merged[-1].ymin, box.xmax, box.ymax)
        else:
            merged.append(box)
    merged.sort(key=lambda b: (b.ymin, b.xmin))
    return merged


def union_area(boxes: "list[Box]") -> int:
    """Area of the union of ``boxes`` (overlap counted once)."""
    return sum(b.area for b in normalize_region(boxes))


def regions_equal(a: "list[Box]", b: "list[Box]") -> bool:
    """True when the two box lists cover exactly the same region."""
    return normalize_region(a) == normalize_region(b)


def subtract_region(boxes: "list[Box]", holes: "list[Box]") -> list[Box]:
    """The region covered by ``boxes`` but not by ``holes``."""
    if not boxes:
        return []
    if not holes:
        return normalize_region(boxes)
    ys = sorted(
        {b.ymin for b in boxes}
        | {b.ymax for b in boxes}
        | {h.ymin for h in holes}
        | {h.ymax for h in holes}
    )
    out: list[Box] = []
    for y0, y1 in zip(ys, ys[1:]):
        keep = _merge_spans(
            [(b.xmin, b.xmax) for b in boxes if b.ymin < y1 and b.ymax > y0]
        )
        if not keep:
            continue
        cut = _merge_spans(
            [(h.xmin, h.xmax) for h in holes if h.ymin < y1 and h.ymax > y0]
        )
        for lo, hi in _subtract_spans(keep, cut):
            out.append(Box(lo, y0, hi, y1))
    return _coalesce(out)


def _merge_spans(spans: "list[tuple[int, int]]") -> list[tuple[int, int]]:
    spans.sort()
    merged: list[tuple[int, int]] = []
    for lo, hi in spans:
        if merged and lo <= merged[-1][1]:
            if hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


def _subtract_spans(
    keep: "list[tuple[int, int]]", cut: "list[tuple[int, int]]"
) -> list[tuple[int, int]]:
    result: list[tuple[int, int]] = []
    for lo, hi in keep:
        pos = lo
        for clo, chi in cut:
            if chi <= pos or clo >= hi:
                continue
            if clo > pos:
                result.append((pos, clo))
            pos = max(pos, chi)
            if pos >= hi:
                break
        if pos < hi:
            result.append((pos, hi))
    return result
