"""Geometry kernel: integer boxes, transforms, polygons, and fracturing."""

from .box import Box, bounding_box
from .fracture import fracture_polygon, fracture_wire
from .merge import (
    normalize_region,
    regions_equal,
    subtract_region,
    union_area,
)
from .polygon import Polygon
from .transform import Transform

__all__ = [
    "Box",
    "Polygon",
    "Transform",
    "bounding_box",
    "fracture_polygon",
    "fracture_wire",
    "normalize_region",
    "regions_equal",
    "subtract_region",
    "union_area",
]
