"""Axis-aligned integer boxes, the primitive unit of CIF artwork.

All coordinates are integers in CIF centimicrons (1/100 micron).  A box is
half-open in neither axis conceptually -- CIF boxes are closed regions --
but overlap predicates distinguish *positive-area* overlap (which conducts)
from mere edge/corner contact (which, between strips, conducts only along
an edge of positive length).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Box:
    """A rectangle with sides parallel to the coordinate axes.

    Invariant: ``xmin < xmax`` and ``ymin < ymax`` (boxes have positive
    area).  Use :meth:`from_center` for CIF-style length/width/center
    construction.
    """

    xmin: int
    ymin: int
    xmax: int
    ymax: int

    def __post_init__(self) -> None:
        if self.xmin >= self.xmax or self.ymin >= self.ymax:
            raise ValueError(
                f"degenerate box ({self.xmin}, {self.ymin}, "
                f"{self.xmax}, {self.ymax})"
            )

    @classmethod
    def from_center(cls, length: int, width: int, cx: int, cy: int) -> "Box":
        """Build a box the way a CIF ``B`` command specifies it.

        ``length`` is the x extent, ``width`` the y extent, and
        ``(cx, cy)`` the center.  CIF centers may put edges on half-integer
        coordinates only if length/width parity disagrees with the center;
        callers are expected to supply consistent values (the CIF parser
        validates this).
        """
        if length <= 0 or width <= 0:
            raise ValueError(f"non-positive box dimensions {length}x{width}")
        if (length % 2) or (width % 2):
            # Preserve integer coordinates by doubling is the classic CIF
            # trick; here we simply require even extents about an integer
            # center, matching Mead-Conway lambda grids.
            raise ValueError(
                f"odd box extent {length}x{width} cannot center on the "
                f"integer grid at ({cx}, {cy})"
            )
        hx, hy = length // 2, width // 2
        return cls(cx - hx, cy - hy, cx + hx, cy + hy)

    # -- basic measures ------------------------------------------------

    @property
    def width(self) -> int:
        """Extent along x."""
        return self.xmax - self.xmin

    @property
    def height(self) -> int:
        """Extent along y."""
        return self.ymax - self.ymin

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.xmin + self.xmax) / 2, (self.ymin + self.ymax) / 2)

    # -- predicates ----------------------------------------------------

    def overlaps(self, other: "Box") -> bool:
        """True if the two boxes share positive area."""
        return (
            self.xmin < other.xmax
            and other.xmin < self.xmax
            and self.ymin < other.ymax
            and other.ymin < self.ymax
        )

    def touches(self, other: "Box") -> bool:
        """True if the boxes share positive area *or* abut along an edge
        of positive length.  Corner-only contact returns False: a single
        shared point does not conduct."""
        x_overlap = min(self.xmax, other.xmax) - max(self.xmin, other.xmin)
        y_overlap = min(self.ymax, other.ymax) - max(self.ymin, other.ymin)
        return (x_overlap > 0 and y_overlap >= 0) or (
            x_overlap >= 0 and y_overlap > 0
        )

    def contains_point(self, x: float, y: float) -> bool:
        """Closed-region containment (boundary points count)."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def contains_box(self, other: "Box") -> bool:
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    # -- constructive operations ----------------------------------------

    def intersection(self, other: "Box") -> "Box | None":
        """The overlapping region, or None when overlap has no area."""
        xmin = max(self.xmin, other.xmin)
        ymin = max(self.ymin, other.ymin)
        xmax = min(self.xmax, other.xmax)
        ymax = min(self.ymax, other.ymax)
        if xmin < xmax and ymin < ymax:
            return Box(xmin, ymin, xmax, ymax)
        return None

    def union_bbox(self, other: "Box") -> "Box":
        """Bounding box of the pair (not a geometric union)."""
        return Box(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def translated(self, dx: int, dy: int) -> "Box":
        return Box(self.xmin + dx, self.ymin + dy, self.xmax + dx, self.ymax + dy)

    def clipped(self, clip: "Box") -> "Box | None":
        """Alias of :meth:`intersection`, named for window slicing."""
        return self.intersection(clip)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box[{self.xmin},{self.ymin} .. {self.xmax},{self.ymax}]"


def bounding_box(boxes: "list[Box] | tuple[Box, ...]") -> Box:
    """Bounding box of a non-empty collection of boxes."""
    if not boxes:
        raise ValueError("bounding_box of empty collection")
    return Box(
        min(b.xmin for b in boxes),
        min(b.ymin for b in boxes),
        max(b.xmax for b in boxes),
        max(b.ymax for b in boxes),
    )
