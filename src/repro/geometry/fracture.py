"""Fracturing polygons and wires into axis-aligned boxes.

The paper (section 3): *"Before being output, non-manhattan geometry is
split into a number of small aligned boxes that approximate the original
object."*  Manhattan polygons fracture exactly; polygons with diagonal
edges are approximated by slab sampling at a caller-chosen resolution
(defaulting to half a lambda so the approximation error stays inside the
design-rule grid).
"""

from __future__ import annotations

from .box import Box
from .polygon import Polygon


def fracture_polygon(polygon: Polygon, resolution: int = 50) -> list[Box]:
    """Split ``polygon`` into axis-aligned boxes.

    Manhattan polygons produce an exact, disjoint decomposition.
    Non-manhattan polygons are sliced into horizontal slabs no taller than
    ``resolution`` and each slab's cross-section (sampled at mid height,
    even-odd rule) becomes one box per interval, with x snapped outward to
    the nearest integers.

    Returns boxes sorted by (ymin, xmin).
    """
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    manhattan = polygon.is_manhattan()

    ys = sorted({y for _, y in polygon.vertices})
    cuts: list[int] = []
    for y0, y1 in zip(ys, ys[1:]):
        cuts.append(y0)
        if not manhattan:
            # Subdivide tall slabs so diagonal edges are tracked closely.
            span = y1 - y0
            steps = span // resolution
            cuts.extend(y0 + resolution * k for k in range(1, steps + 1) if y0 + resolution * k < y1)
    cuts.append(ys[-1])
    cuts = sorted(set(cuts))

    boxes: list[Box] = []
    for y0, y1 in zip(cuts, cuts[1:]):
        mid = (y0 + y1) / 2
        xs = polygon.crossings_at(mid)
        if len(xs) % 2:
            raise ValueError(
                f"self-intersecting or malformed polygon: odd crossing "
                f"count at y={mid}"
            )
        for xa, xb in zip(xs[0::2], xs[1::2]):
            # Snap to integers; round-half-out keeps the approximation
            # symmetric about the original edge.
            ixa, ixb = round(xa), round(xb)
            if ixa < ixb:
                boxes.append(Box(ixa, y0, ixb, y1))
    return _coalesce_vertical(boxes)


def _coalesce_vertical(boxes: list[Box]) -> list[Box]:
    """Merge vertically stacked boxes with identical x extents.

    Slab decomposition of a manhattan polygon cuts at *every* vertex y, so
    rectangles spanning several slabs come out sliced; re-joining them
    keeps the box count near the minimum, which matters because the
    extractor's cost is counted in boxes.
    """
    boxes = sorted(boxes, key=lambda b: (b.xmin, b.xmax, b.ymin))
    merged: list[Box] = []
    for box in boxes:
        if (
            merged
            and merged[-1].xmin == box.xmin
            and merged[-1].xmax == box.xmax
            and merged[-1].ymax == box.ymin
        ):
            merged[-1] = Box(box.xmin, merged[-1].ymin, box.xmax, box.ymax)
        else:
            merged.append(box)
    merged.sort(key=lambda b: (b.ymin, b.xmin))
    return merged


def fracture_wire(
    points: "list[tuple[int, int]]", width: int, resolution: int = 50
) -> list[Box]:
    """Fracture a CIF ``W`` wire into boxes.

    A wire is a path with square ends extended by half its width, the
    Mead-Conway convention.  Axis-parallel segments become single boxes;
    diagonal segments are fractured through the polygon path at
    ``resolution``.
    """
    if width <= 0:
        raise ValueError("wire width must be positive")
    if (width % 2) != 0:
        raise ValueError("odd wire width cannot center on the integer grid")
    if len(points) == 0:
        raise ValueError("wire needs at least one point")
    half = width // 2
    if len(points) == 1:
        (x, y) = points[0]
        return [Box(x - half, y - half, x + half, y + half)]

    boxes: list[Box] = []
    for (x1, y1), (x2, y2) in zip(points, points[1:]):
        if x1 == x2 and y1 == y2:
            continue
        if y1 == y2:
            xa, xb = (x1, x2) if x1 < x2 else (x2, x1)
            boxes.append(Box(xa - half, y1 - half, xb + half, y1 + half))
        elif x1 == x2:
            ya, yb = (y1, y2) if y1 < y2 else (y2, y1)
            boxes.append(Box(x1 - half, ya - half, x1 + half, yb + half))
        else:
            boxes.extend(
                _fracture_diagonal_segment(x1, y1, x2, y2, half, resolution)
            )
    return boxes


def _fracture_diagonal_segment(
    x1: int, y1: int, x2: int, y2: int, half: int, resolution: int
) -> list[Box]:
    """Approximate a diagonal wire segment by a staircase of boxes."""
    length = max(abs(x2 - x1), abs(y2 - y1))
    steps = max(1, length // max(1, resolution))
    boxes: list[Box] = []
    for k in range(steps + 1):
        cx = round(x1 + (x2 - x1) * k / steps)
        cy = round(y1 + (y2 - y1) * k / steps)
        boxes.append(Box(cx - half, cy - half, cx + half, cy + half))
    return boxes
