"""CIF call transforms: translation, mirroring, and 90-degree rotation.

CIF's ``C`` (call) command takes a list of ``T dx dy``, ``M X``, ``M Y``,
and ``R a b`` operations applied left to right.  ACE only needs the
manhattan subgroup -- rotations by multiples of 90 degrees -- because all
geometry is fractured to axis-aligned boxes before extraction; arbitrary
``R a b`` directions are snapped to the nearest axis with a warning by the
parser.

A transform is represented by the matrix

    [a  b  0]
    [c  d  0]
    [dx dy 1]

with ``(a, b, c, d)`` one of the eight signed permutation matrices (the
dihedral group of the square).
"""

from __future__ import annotations

from dataclasses import dataclass

from .box import Box

#: The eight manhattan orientations as (a, b, c, d) row-vector matrices.
_ORIENTATIONS = {
    (1, 0, 0, 1),
    (0, 1, -1, 0),
    (-1, 0, 0, -1),
    (0, -1, 1, 0),
    (-1, 0, 0, 1),
    (1, 0, 0, -1),
    (0, 1, 1, 0),
    (0, -1, -1, 0),
}


@dataclass(frozen=True, slots=True)
class Transform:
    """An element of the manhattan affine group over the integer grid."""

    a: int = 1
    b: int = 0
    c: int = 0
    d: int = 1
    dx: int = 0
    dy: int = 0

    def __post_init__(self) -> None:
        if (self.a, self.b, self.c, self.d) not in _ORIENTATIONS:
            raise ValueError(
                f"non-manhattan orientation matrix "
                f"({self.a}, {self.b}, {self.c}, {self.d})"
            )

    # -- constructors ----------------------------------------------------

    @classmethod
    def identity(cls) -> "Transform":
        return cls()

    @classmethod
    def translation(cls, dx: int, dy: int) -> "Transform":
        return cls(dx=dx, dy=dy)

    @classmethod
    def mirror_x(cls) -> "Transform":
        """CIF ``M X``: negate x coordinates."""
        return cls(a=-1, d=1)

    @classmethod
    def mirror_y(cls) -> "Transform":
        """CIF ``M Y``: negate y coordinates."""
        return cls(a=1, d=-1)

    @classmethod
    def rotation(cls, rx: int, ry: int) -> "Transform":
        """CIF ``R a b``: rotate so the +x axis points along (rx, ry).

        Only the four axis directions are supported; the CIF parser snaps
        other directions before reaching here.
        """
        if rx > 0 and ry == 0:
            return cls()
        if rx == 0 and ry > 0:
            return cls(a=0, b=1, c=-1, d=0)
        if rx < 0 and ry == 0:
            return cls(a=-1, b=0, c=0, d=-1)
        if rx == 0 and ry < 0:
            return cls(a=0, b=-1, c=1, d=0)
        raise ValueError(f"rotation direction ({rx}, {ry}) is not axis-aligned")

    # -- group operations -------------------------------------------------

    def then(self, other: "Transform") -> "Transform":
        """The transform equal to applying ``self`` first, then ``other``."""
        return Transform(
            a=self.a * other.a + self.b * other.c,
            b=self.a * other.b + self.b * other.d,
            c=self.c * other.a + self.d * other.c,
            d=self.c * other.b + self.d * other.d,
            dx=self.dx * other.a + self.dy * other.c + other.dx,
            dy=self.dx * other.b + self.dy * other.d + other.dy,
        )

    def inverse(self) -> "Transform":
        # The orientation part is orthogonal with determinant +-1, so its
        # inverse is its transpose divided by the determinant.
        det = self.a * self.d - self.b * self.c
        ia, ib = self.d // det, -self.b // det
        ic, id_ = -self.c // det, self.a // det
        return Transform(
            a=ia,
            b=ib,
            c=ic,
            d=id_,
            dx=-(self.dx * ia + self.dy * ic),
            dy=-(self.dx * ib + self.dy * id_),
        )

    @property
    def orientation(self) -> tuple[int, int, int, int]:
        """The rotation/mirror part, used as a window-memo key component."""
        return (self.a, self.b, self.c, self.d)

    @property
    def is_identity(self) -> bool:
        return self == Transform()

    # -- application ------------------------------------------------------

    def apply_point(self, x: int, y: int) -> tuple[int, int]:
        return (
            x * self.a + y * self.c + self.dx,
            x * self.b + y * self.d + self.dy,
        )

    def apply_box(self, box: Box) -> Box:
        x1, y1 = self.apply_point(box.xmin, box.ymin)
        x2, y2 = self.apply_point(box.xmax, box.ymax)
        return Box(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
