#!/usr/bin/env python3
"""End-to-end smoke test of the sharded fleet tier as real processes.

What CI's ``fleet-smoke`` job runs (and anyone can run locally)::

    PYTHONPATH=src python tools/fleet_smoke.py --out fleet-report.json

The script supervises three ``repro-serve`` shard subprocesses on a
shared artifact store behind a ``FleetRouter``, then drills the claims
of docs/FLEET.md in order:

1. a barrier burst of identical submissions coalesces onto one
   upstream job and every submitter gets the same wirelist bytes;
2. with a backlog in flight, one shard is SIGKILLed — every job must
   still complete, with wirelists byte-identical to a solo in-process
   daemon (the failover + determinism contract);
3. a rolling restart replaces every shard (generation bump, same ring
   slice) while the fleet keeps serving;
4. the router and the surviving shards drain cleanly.

This covers what the in-process suite cannot: real subprocess shards
dying from real signals under a real asyncio front end.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cif import write as write_cif  # noqa: E402
from repro.fleet.router import FleetRouter, RouterConfig  # noqa: E402
from repro.fleet.supervisor import FleetSupervisor  # noqa: E402
from repro.service import (  # noqa: E402
    ExtractionService,
    ServiceClient,
    ServiceConfig,
)
from repro.workloads import (  # noqa: E402
    dram_column,
    poly_diff_mesh,
    transistor_array,
)

SHARDS = 3
WAIT = 120.0


def fail(message: str) -> int:
    print(f"FLEET SMOKE FAILURE: {message}", file=sys.stderr)
    return 1


def payload_set() -> "list[tuple[str, str]]":
    payloads = [
        (f"mesh{n}.cif", write_cif(poly_diff_mesh(n))) for n in (4, 5, 6, 7)
    ]
    payloads += [
        (f"dram{n}.cif", write_cif(dram_column(n))) for n in (4, 6)
    ]
    return payloads


def reference_wirelists(payloads: "list[tuple[str, str]]") -> "dict[str, str]":
    """Ground truth from a solo in-process daemon — no fleet involved."""
    svc = ExtractionService(ServiceConfig(port=0, workers=2, quiet=True))
    svc.start()
    try:
        client = ServiceClient(port=svc.port, timeout=WAIT)
        return {
            name: client.extract(cif, name=name, wait_timeout=WAIT)["wirelist"]
            for name, cif in payloads
        }
    finally:
        svc.close()


def run_burst(port: int, submitters: int) -> "tuple[list[str], list[str]]":
    cif = write_cif(transistor_array(8))
    barrier = threading.Barrier(submitters)
    wirelists: "list[str]" = []
    errors: "list[str]" = []
    lock = threading.Lock()

    def one() -> None:
        client = ServiceClient(port=port, timeout=WAIT, retries=4)
        barrier.wait()
        try:
            result = client.extract(
                cif, name="burst.cif", wait_timeout=WAIT
            )
            with lock:
                wirelists.append(result["wirelist"])
        except Exception as exc:  # noqa: BLE001 - smoke collects everything
            with lock:
                errors.append(repr(exc))

    threads = [threading.Thread(target=one) for _ in range(submitters)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return wirelists, errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="JSON report path")
    args = parser.parse_args()

    report: dict = {"shards": SHARDS}
    payloads = payload_set()
    print("computing solo-daemon reference wirelists ...")
    reference = reference_wirelists(payloads)

    store = tempfile.mkdtemp(prefix="fleet-smoke-store-")
    supervisor = FleetSupervisor(
        SHARDS, workers=1, store_dir=store, prime_cache=8
    )
    router = None
    try:
        specs = supervisor.start()
        router = FleetRouter(
            specs,
            RouterConfig(port=0, quiet=True, health_interval=0.5),
        )
        router.start()
        client = ServiceClient(port=router.port, timeout=WAIT, retries=4)

        # 1. Coalescing burst.
        wirelists, errors = run_burst(router.port, submitters=6)
        if errors:
            return fail(f"burst submissions errored: {errors}")
        if len(set(wirelists)) != 1:
            return fail("burst produced divergent wirelist bytes")
        counters = client.metrics()["fleet"]["counters"]
        if counters.get("coalesced", 0) < 1:
            return fail(f"no coalesce hits recorded: {counters}")
        report["burst"] = {
            "submitters": 6,
            "coalesced": counters.get("coalesced", 0),
        }
        print(f"burst: 6 submitters, {counters['coalesced']} coalesced")

        # 2. Kill one shard with jobs in flight; everything completes.
        receipts = {
            name: client.submit(cif, name=name)["job"]
            for name, cif in payloads
        }
        # Kill the shard actually holding the most in-flight jobs, so
        # the drill exercises failover rather than an idle bystander.
        victim = max(
            router.shards.values(),
            key=lambda shard: len(router.table.pending_on(shard)),
        ).name
        supervisor.kill_shard(victim)
        print(f"SIGKILLed {victim} with {len(receipts)} jobs submitted")
        mismatched = []
        for name, ident in receipts.items():
            client.wait(ident, timeout=WAIT)
            result = client.result(ident)
            if result["wirelist"] != reference[name]:
                mismatched.append(name)
        if mismatched:
            return fail(f"post-kill wirelists diverged: {mismatched}")
        counters = client.metrics()["fleet"]["counters"]
        report["kill"] = {
            "victim": victim,
            "jobs": len(receipts),
            "failovers": counters.get("failover", 0),
            "shards_down": counters.get("shard_down", 0),
        }
        print(
            f"kill drill: {len(receipts)}/{len(receipts)} byte-identical, "
            f"failovers={counters.get('failover', 0)}"
        )

        # Revive the victim so the rolling restart sees a full fleet.
        host, port = supervisor.restart_shard(victim)
        router.update_shard(victim, host, port)

        # 3. Rolling restart: every shard replaced, fleet keeps serving.
        supervisor.rolling_restart(
            on_restarted=lambda name, host, port: router.update_shard(
                name, host, port
            )
        )
        name, cif = payloads[0]
        after = client.extract(cif, name=name, wait_timeout=WAIT)
        if after["wirelist"] != reference[name]:
            return fail("post-restart wirelist diverged")
        health = client.health()
        generations = {
            s["name"]: s["generation"] for s in health["shards"]
        }
        stale = [n for n, g in generations.items() if g < 1]
        if stale:
            return fail(f"shards not restarted: {stale}")
        report["rolling_restart"] = {"generations": generations}
        print(f"rolling restart: generations {generations}")

        # 4. Clean drain, router first, then the shard processes.
        deadline = time.monotonic() + 30.0
        router_clean = router.drain(grace=max(1.0, deadline - time.monotonic()))
        shards_clean = supervisor.drain()
        report["drain"] = {
            "router_clean": router_clean,
            "shards_clean": shards_clean,
        }
        if not router_clean or not shards_clean:
            return fail(f"drain was not clean: {report['drain']}")
        print("graceful drain: clean")
    finally:
        if router is not None:
            router.close()
        supervisor.close()

    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.out}")
    print("fleet smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
