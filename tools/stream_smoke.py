#!/usr/bin/env python3
"""Process-level smoke test of the banded streaming pipeline.

What CI's ``stream-smoke`` job runs (and anyone can run locally)::

    PYTHONPATH=src python tools/stream_smoke.py --out stream-report.json

Three passes over every layout in ``examples/layouts/``:

1. **Band equivalence** — stream each layout at several band heights
   (whole-chip, coarse, fine) and require bytes identical to the
   in-memory extraction.
2. **Kill and resume** — relaunch this script as a child streaming the
   layout with checkpointing on, SIGKILL it mid-sweep via the
   crash-injection hooks, then run the child clean with
   ``resume="auto"`` and require the finished bytes.
3. **Peak memory** — measure tracemalloc allocator peaks for the
   in-memory and streamed pipelines on a tall synthetic chip and
   require the streamed peak to stay well below the in-memory one.

The report (``--out``) is uploaded as a CI artifact so the measured
peaks are inspectable per run.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import tracemalloc
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LAYOUTS = sorted((REPO / "examples" / "layouts").glob("*.cif"))

sys.path.insert(0, str(REPO / "src"))

from repro.cif import parse  # noqa: E402
from repro.core import extract, extract_report  # noqa: E402
from repro.frontend import GeometryStream  # noqa: E402
from repro.streaming import stream_extract  # noqa: E402
from repro.tech import NMOS  # noqa: E402
from repro.wirelist import to_wirelist, write_wirelist  # noqa: E402
from repro.workloads import inverter_rows  # noqa: E402


def fail(message: str) -> int:
    print(f"SMOKE FAILURE: {message}", file=sys.stderr)
    return 1


def expected_text(layout, name: str) -> str:
    report = extract_report(layout, keep_geometry=False)
    return write_wirelist(to_wirelist(report.circuit, name=name))


def chip_height(layout) -> int:
    bbox = GeometryStream(layout).chip_bbox
    return (bbox.ymax - bbox.ymin) if bbox else 0


def band_heights(layout) -> "list[int | None]":
    height = chip_height(layout)
    return [None, max(1, height // 5), max(1, height // 23)]


def check_equivalence(report: dict) -> int:
    rows = []
    for path in LAYOUTS:
        layout = parse(path.read_text())
        expected = expected_text(layout, path.name)
        for band_height in band_heights(layout):
            streamed = stream_extract(
                layout,
                NMOS(),
                name=path.name,
                band_height=band_height,
            )
            if streamed.text != expected:
                return fail(
                    f"{path.name}: streamed bytes diverged at "
                    f"band_height={band_height}"
                )
            rows.append(
                {
                    "layout": path.name,
                    "band_height": band_height,
                    "bands": streamed.bands,
                }
            )
        print(f"equivalence ok: {path.name} ({len(band_heights(layout))} plans)")
    report["equivalence"] = rows
    return 0


def run_child(
    path: Path, band_height: int, ck: Path, out: Path, env_extra: dict
) -> "subprocess.CompletedProcess[str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO / 'src'}:{env.get('PYTHONPATH', '')}"
    env.update(env_extra)
    return subprocess.run(
        [
            sys.executable,
            __file__,
            "--child",
            str(path),
            str(band_height),
            str(ck),
            str(out),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def check_kill_resume(report: dict) -> int:
    rows = []
    for path in LAYOUTS:
        layout = parse(path.read_text())
        height = chip_height(layout)
        band_height = max(1, height // 11)
        expected = expected_text(layout, "case")
        with tempfile.TemporaryDirectory() as tmp:
            ck = Path(tmp) / "sweep.ck"
            out = Path(tmp) / "out.wl"
            killed = run_child(
                path,
                band_height,
                ck,
                out,
                {
                    "ACE_STREAM_KILL_AFTER_BANDS": "2",
                    "ACE_STREAM_KILL_PHASE": "spill",
                },
            )
            if killed.returncode != -signal.SIGKILL:
                return fail(
                    f"{path.name}: child survived the kill hook "
                    f"(rc={killed.returncode})\n{killed.stderr}"
                )
            resumed = run_child(path, band_height, ck, out, {})
            if resumed.returncode != 0:
                return fail(
                    f"{path.name}: resume failed\n{resumed.stderr}"
                )
            if out.read_text() != expected:
                return fail(f"{path.name}: resumed bytes diverged")
        rows.append({"layout": path.name, "band_height": band_height})
        print(f"kill+resume ok: {path.name}")
    report["kill_resume"] = rows
    return 0


def alloc_peak(fn) -> int:
    tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def check_memory(report: dict) -> int:
    tech = NMOS()
    layout = inverter_rows(32, 6)
    band_height = max(1, chip_height(layout) // 16)

    def in_memory() -> None:
        circuit = extract(layout, tech, keep_geometry=True)
        write_wirelist(to_wirelist(circuit, name="case"))

    def streamed() -> None:
        with open(os.devnull, "w") as out:
            stream_extract(
                layout,
                tech,
                name="case",
                band_height=band_height,
                keep_geometry=True,
                out=out,
            )

    # Warm both paths first: the first call in a process pays one-time
    # import and cache allocations that would pollute the measurement.
    streamed()
    in_memory()
    full = alloc_peak(in_memory)
    banded = alloc_peak(streamed)
    report["memory"] = {
        "workload": "inverter_rows(32, 6)",
        "band_height": band_height,
        "in_memory_peak_bytes": full,
        "streamed_peak_bytes": banded,
        "ratio": round(full / banded, 2) if banded else None,
    }
    print(
        f"memory: in-memory {full / 1e6:.2f}MB, "
        f"streamed {banded / 1e6:.2f}MB"
    )
    if banded * 2 >= full:
        return fail(
            "streamed allocator peak is not under half the in-memory peak"
        )
    return 0


def child_main(argv: "list[str]") -> int:
    path, band_height, ck, out_path = argv
    layout = parse(Path(path).read_text())
    with open(out_path, "w") as out:
        stream_extract(
            layout,
            NMOS(),
            name="case",
            band_height=int(band_height),
            checkpoint=ck,
            resume="auto",
            out=out,
        )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="JSON report path")
    parser.add_argument("--child", nargs=4, help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.child:
        return child_main(args.child)

    report: dict = {}
    for check in (check_equivalence, check_kill_resume, check_memory):
        rc = check(report)
        if rc:
            return rc
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.out}")
    print("stream smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
