#!/usr/bin/env python3
"""End-to-end smoke test of the extraction daemon as a real process.

What CI's ``service-smoke`` job runs (and anyone can run locally)::

    PYTHONPATH=src python tools/service_smoke.py

The script starts ``repro-serve`` as a subprocess on an ephemeral port,
submits ``examples/layouts/nand2.cif`` twice (the second response must
be a result-cache hit with byte-identical wirelist), checks the
``/metrics`` plane agrees (hit counter, zero failures), then sends
SIGTERM and requires a graceful drain with exit code 0.  This covers
the one thing the in-process test suite cannot: the signal-driven
shutdown path of a real daemon process.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LAYOUT = REPO / "examples" / "layouts" / "nand2.cif"


def fail(message: str) -> "int":
    print(f"SMOKE FAILURE: {message}", file=sys.stderr)
    return 1


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.service import ServiceClient

    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO / 'src'}:{env.get('PYTHONPATH', '')}"
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--port", "0", "--workers", "2", "--drain-grace", "30",
        ],
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO,
        env=env,
    )
    try:
        # The first structured log line announces the bound address.
        assert daemon.stderr is not None
        ready = json.loads(daemon.stderr.readline())
        if ready.get("event") != "ready":
            return fail(f"expected a ready line, got {ready!r}")
        match = re.search(r":(\d+)$", ready["address"])
        if match is None:
            return fail(f"unparseable address {ready['address']!r}")
        client = ServiceClient(port=int(match.group(1)), timeout=60.0)

        cif = LAYOUT.read_text()
        first = client.extract(cif, name="nand2.cif", wait_timeout=60.0)
        receipt = client.submit(cif, name="nand2.cif")
        if not receipt.get("cached"):
            return fail(f"second submission was not a cache hit: {receipt}")
        second = client.result(receipt["job"])
        if second["wirelist"] != first["wirelist"]:
            return fail("cache hit returned different wirelist bytes")

        metrics = client.metrics()
        if metrics["cache"]["hits"] < 1:
            return fail(f"metrics counted no cache hit: {metrics['cache']}")
        jobs = metrics["jobs"]
        if jobs["failed"] or jobs["timed_out"]:
            return fail(f"daemon recorded failures: {jobs}")
        if jobs["completed"] < 2:
            return fail(f"expected >= 2 completed jobs: {jobs}")
        print(
            f"submitted={jobs['submitted']} completed={jobs['completed']} "
            f"cache_hits={metrics['cache']['hits']} "
            f"p95={metrics['latency']['p95_seconds'] * 1000:.1f}ms"
        )

        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(timeout=60)
        if code != 0:
            return fail(f"daemon exited {code} after SIGTERM, wanted 0")
        print("graceful shutdown: exit 0")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
