#!/usr/bin/env python3
"""Fail on broken intra-repo Markdown links and unindexed docs pages.

Walks every ``*.md`` file in the repository, extracts inline links and
images, and verifies that relative targets exist on disk.  External
links (``http(s)://``, ``mailto:``) and pure in-page anchors are out of
scope — this guards the repo's own cross-references (README -> docs/,
docs -> source files), which are the ones that silently rot.

Additionally enforces index coverage: every ``docs/*.md`` page must be
linked from ``docs/INDEX.md``, the reading-order index, so a new doc
cannot ship unreachable.

Usage: ``python tools/check_links.py [root]`` (default: the repo root
containing this script).  Exit status 0 when clean, 1 with a report of
every broken link otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown links/images: [text](target) / ![alt](target).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not _SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def broken_links(root: Path) -> "list[tuple[Path, str]]":
    """(file, target) pairs whose relative target does not exist."""
    missing = []
    for md in markdown_files(root):
        for match in _LINK.finditer(md.read_text(encoding="utf-8")):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if path_part.startswith("/"):
                resolved = root / path_part.lstrip("/")
            else:
                resolved = md.parent / path_part
            if not resolved.exists():
                missing.append((md, target))
    return missing


def unindexed_docs(root: Path) -> "list[Path]":
    """docs/*.md pages not linked from docs/INDEX.md (which must exist)."""
    docs = root / "docs"
    index = docs / "INDEX.md"
    if not index.is_file():
        return sorted(docs.glob("*.md"))
    linked = {
        match.group(1).split("#", 1)[0]
        for match in _LINK.finditer(index.read_text(encoding="utf-8"))
    }
    return sorted(
        page
        for page in docs.glob("*.md")
        if page.name != "INDEX.md" and page.name not in linked
    )


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    missing = broken_links(root)
    for md, target in missing:
        print(f"{md.relative_to(root)}: broken link -> {target}")
    orphans = unindexed_docs(root)
    for page in orphans:
        print(
            f"{page.relative_to(root)}: not linked from docs/INDEX.md "
            "(add it to the reading-order index)"
        )
    if missing or orphans:
        print(
            f"{len(missing)} broken intra-repo link(s), "
            f"{len(orphans)} unindexed docs page(s)"
        )
        return 1
    count = sum(1 for _ in markdown_files(root))
    print(
        f"ok: no broken intra-repo links in {count} Markdown files; "
        "every docs page is indexed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
