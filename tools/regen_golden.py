#!/usr/bin/env python3
"""Regenerate the golden wirelist snapshots under tests/golden/.

Usage::

    PYTHONPATH=src python tools/regen_golden.py [case ...]

With no arguments every case in tests/golden/cases.py is rewritten;
naming cases limits the refresh.  The script prints which files changed
so an accidental regen is visible before committing.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from tests.golden.cases import GOLDEN_CASES, render_case  # noqa: E402

GOLDEN_DIR = REPO / "tests" / "golden"


def main(argv: "list[str] | None" = None) -> int:
    names = (argv if argv is not None else sys.argv[1:]) or sorted(GOLDEN_CASES)
    unknown = [n for n in names if n not in GOLDEN_CASES]
    if unknown:
        print(f"unknown case(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(GOLDEN_CASES))}", file=sys.stderr)
        return 2
    for name in names:
        path = GOLDEN_DIR / f"{name}.wirelist"
        text = render_case(name)
        old = path.read_text() if path.exists() else None
        if old == text:
            print(f"  unchanged  {path.relative_to(REPO)}")
            continue
        path.write_text(text)
        verb = "updated" if old is not None else "created"
        print(f"  {verb:>9}  {path.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
