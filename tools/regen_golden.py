#!/usr/bin/env python3
"""Regenerate the golden wirelist and lint-report snapshots under tests/golden/.

Usage::

    PYTHONPATH=src python tools/regen_golden.py [case ...]

With no arguments every case in tests/golden/cases.py is rewritten;
naming cases limits the refresh.  The script prints which files changed
so an accidental regen is visible before committing.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from tests.golden.cases import (  # noqa: E402
    GOLDEN_CASES,
    LINT_CASES,
    render_case,
    render_lint_case,
)

GOLDEN_DIR = REPO / "tests" / "golden"


def _refresh(path: Path, text: str) -> None:
    old = path.read_text() if path.exists() else None
    if old == text:
        print(f"  unchanged  {path.relative_to(REPO)}")
        return
    path.write_text(text)
    verb = "updated" if old is not None else "created"
    print(f"  {verb:>9}  {path.relative_to(REPO)}")


def main(argv: "list[str] | None" = None) -> int:
    names = (argv if argv is not None else sys.argv[1:]) or sorted(LINT_CASES)
    unknown = [n for n in names if n not in LINT_CASES]
    if unknown:
        print(f"unknown case(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(LINT_CASES))}", file=sys.stderr)
        return 2
    for name in names:
        if name in GOLDEN_CASES:
            _refresh(GOLDEN_DIR / f"{name}.wirelist", render_case(name))
        _refresh(GOLDEN_DIR / f"{name}.lint", render_lint_case(name))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
