"""Regenerate the committed CIF layouts under ``examples/layouts/``.

These are the inputs for the CI lint-smoke job: the canonical cells
(which must lint clean) plus the deliberately violating fixture, whose
known findings are suppressed by the committed
``examples/layouts/lint-baseline.json`` (regenerate it with
``repro-lint examples/layouts/*.cif --write-baseline ...``).

Cases drawn in a non-NMOS deck go to a per-deck subdirectory
(``examples/layouts/cmos/``) so each directory lints under exactly one
``--deck`` selection.

Usage::

    PYTHONPATH=src python tools/gen_example_layouts.py
"""

from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from repro.cif import write  # noqa: E402
from golden.cases import LINT_CASES, tech_for  # noqa: E402

OUT = Path(__file__).resolve().parent.parent / "examples" / "layouts"


def main() -> int:
    OUT.mkdir(parents=True, exist_ok=True)
    for name in sorted(LINT_CASES):
        tech = tech_for(name)
        deck = tech.deck.name if tech.deck is not None else "nmos"
        directory = OUT if deck == "nmos" else OUT / deck
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}.cif"
        path.write_text(write(LINT_CASES[name]()))
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
