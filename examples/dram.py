#!/usr/bin/env python3
"""From artwork to working memory: a one-transistor DRAM column.

The testram chip of Table 5-1 was a memory array.  This example draws a
functional column of its storage principle, extracts it, and *operates*
it with the switch-level simulator's charge-retention model: write a
pattern through the bitline, close the wordlines, and read the floating
storage nodes back.

Run:  python examples/dram.py
"""

from repro import extract
from repro.plot import ascii_plot
from repro.sim import SwitchSimulator
from repro.workloads import dram_column


def main() -> None:
    bits = 6
    layout = dram_column(bits)
    print(f"=== {bits}-bit DRAM column artwork ===")
    print(ascii_plot(layout, width=30))

    circuit = extract(layout)
    print(
        f"extracted: {len(circuit.devices)} access transistors, "
        f"{len(circuit.nets)} nets"
    )

    sim = SwitchSimulator(circuit, charge_retention=True)
    for i in range(bits):
        sim.set_input(f"WL{i}", 0)

    pattern = [1, 0, 1, 1, 0, 1]
    print(f"\nwriting pattern {pattern} bit by bit...")
    for i, bit in enumerate(pattern):
        sim.set_input("BL", bit)
        sim.set_input(f"WL{i}", 1)
        sim.simulate()
        sim.set_input(f"WL{i}", 0)
        sim.simulate()

    sim.set_input("BL", 0)
    result = sim.simulate()
    stored = [result.of(f"S{i}") for i in range(bits)]
    print(f"stored charge on floating nodes: {stored}")
    assert stored == pattern
    print("pattern retained: the layout is a working memory")


if __name__ == "__main__":
    main()
