#!/usr/bin/env python3
"""Incremental re-extraction across an editing session.

The paper's conclusion points at incremental extraction as the natural
next step for edge-based extractors.  Here an editing session touches
one cell of a chip between extractions; the persistent window table
recognizes everything else as unchanged.

Run:  python examples/incremental.py
"""

import time

from repro.hext import IncrementalExtractor
from repro.workloads import LayoutBuilder, build_chain_inverter_cell


def chip(edited_load: int | None = None, rows: int = 12, cols: int = 16):
    """A block of inverter chains; one cell optionally edited."""
    builder = LayoutBuilder()
    normal = build_chain_inverter_cell(builder)
    edited = (
        build_chain_inverter_cell(builder, load_length=edited_load)
        if edited_load
        else None
    )
    for i in range(rows):
        for j in range(cols):
            cell = edited if (edited and i == 3 and j == 7) else normal
            builder.top.call(cell, j * 10, i * 28)
    return builder.done()


def main() -> None:
    extractor = IncrementalExtractor()

    def run(label: str, layout) -> None:
        started = time.perf_counter()
        result = extractor.extract(layout)
        result.circuit
        seconds = time.perf_counter() - started
        stats = extractor.last_stats
        print(
            f"{label:28s} {seconds:6.3f}s  "
            f"windows={stats.windows_seen:4d}  "
            f"new={stats.freshly_extracted:3d}  "
            f"cached(prev)={stats.reused_from_previous:4d}  "
            f"devices={len(result.circuit.devices)}"
        )

    print("an editing session with a persistent extractor:")
    run("initial extraction", chip())
    run("re-extract, no edits", chip())
    run("edit one cell's pullup", chip(edited_load=5))
    run("tweak it again", chip(edited_load=3))
    run("revert the edit", chip())
    removed = extractor.prune()
    print(f"\npruned {removed} abandoned cell revision(s) from the cache "
          f"({len(extractor)} windows retained)")


if __name__ == "__main__":
    main()
