#!/usr/bin/env python3
"""Truth table in, verified silicon out: a PLA through the whole chain.

A majority-of-three function is programmed into a NOR-NOR PLA, the
artwork is generated, the extractor recovers the netlist, and the
switch-level simulator evaluates every input combination -- which must
match the specification the layout was synthesized from.

Run:  python examples/pla_synthesis.py
"""

import itertools

from repro import extract
from repro.plot import ascii_plot
from repro.sim import SwitchSimulator
from repro.workloads import PlaSpec, pla


def main() -> None:
    spec = PlaSpec(
        num_inputs=3,
        products=(
            {0: True, 1: True},
            {0: True, 2: True},
            {1: True, 2: True},
        ),
        outputs=(frozenset({0, 1, 2}),),
    )
    layout = pla(spec)
    print("=== majority-of-3 PLA artwork ===")
    print(ascii_plot(layout, width=72, show_labels=False))

    circuit = extract(layout)
    dep = sum(d.kind == "nDep" for d in circuit.devices)
    enh = sum(d.kind == "nEnh" for d in circuit.devices)
    print(f"extracted {dep} loads + {enh} pulldowns, {len(circuit.nets)} nets")

    sim = SwitchSimulator(circuit)
    print("\nA B C | NOUT (active-low majority)")
    all_match = True
    for inputs in itertools.product((0, 1), repeat=3):
        for i, value in enumerate(inputs):
            sim.set_input(f"IN{i}", value)
            sim.set_input(f"NIN{i}", 1 - value)
        got = sim.simulate().of("NOUT0")
        expected = spec.expected(inputs)[0]
        mark = "" if got == expected else "   <-- MISMATCH"
        all_match &= got == expected
        print(f"{inputs[0]} {inputs[1]} {inputs[2]} |  {got}{mark}")
    print(
        "\nthe extracted layout computes exactly the synthesized function"
        if all_match
        else "\nMISMATCH -- extraction or simulation bug"
    )


if __name__ == "__main__":
    main()
