#!/usr/bin/env python3
"""Quickstart: extract the paper's inverter (Figures 3-3 / 3-4).

Builds the NMOS inverter of Figure 3-3 -- enhancement pulldown, buried-
contact depletion pullup, metal rails -- runs the edge-based extractor,
and prints the wirelist in the CMU format of Figure 3-4.

Run:  python examples/quickstart.py
"""

from repro import extract
from repro.cif import write
from repro.wirelist import to_wirelist, write_wirelist
from repro.workloads import inverter


def main() -> None:
    layout = inverter()

    print("=== CIF artwork (what the extractor reads) ===")
    print(write(layout))

    # keep_geometry attaches per-net and per-device artwork so the
    # wirelist can include the CIF strings, as in Figure 3-4.
    circuit = extract(layout, keep_geometry=True)

    print("=== Extracted circuit ===")
    for device in circuit.devices:
        nets = {n.index: n.label for n in circuit.nets}
        print(
            f"  {device.kind}: gate={nets[device.gate]} "
            f"source={nets[device.source]} drain={nets[device.drain]} "
            f"L={device.length:g} W={device.width:g} "
            f"(L/W ratio {device.length / device.width:g})"
        )
    for net in circuit.nets:
        print(f"  net N{net.index} {net.names} at {net.location}")

    print()
    print("=== Wirelist (Figure 3-4 format) ===")
    print(write_wirelist(to_wirelist(circuit, name="inverter.cif")))


if __name__ == "__main__":
    main()
