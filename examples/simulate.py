#!/usr/bin/env python3
"""Extract, then simulate: closing the loop of the paper's section 1.

"The wirelist can be fed to other CAD tools to verify the correctness of
the circuit.  Logic simulators help validate the logical correctness."
This example extracts a NAND gate and an inverter chain from artwork and
runs the switch-level simulator over the extracted netlists: the layout
is verified to compute what the designer intended, without ever drawing
a schematic.

Run:  python examples/simulate.py
"""

from repro import extract
from repro.sim import SwitchSimulator
from repro.workloads import inverter_rows, nand2


def main() -> None:
    print("=== NAND gate, extracted from artwork ===")
    circuit = extract(nand2())
    print(
        f"extracted {len(circuit.devices)} devices "
        f"({sum(d.kind == 'nEnh' for d in circuit.devices)} pulldowns in "
        f"series under one load)"
    )
    sim = SwitchSimulator(circuit)
    print("A B | OUT")
    for a in (0, 1):
        for b in (0, 1):
            sim.set_input("A", a)
            sim.set_input("B", b)
            print(f"{a} {b} |  {sim.simulate().of('OUT')}")

    print()
    print("=== 5-stage inverter chain ===")
    chain = extract(inverter_rows(1, 5))
    sim = SwitchSimulator(chain)
    for value in (0, 1):
        sim.set_input("IN0", value)
        result = sim.simulate()
        print(
            f"IN0={value} -> OUT0={result.of('OUT0')} "
            f"(settled in {result.iterations} passes; odd stages invert)"
        )

    print()
    print("=== X propagation ===")
    sim.set_input("IN0", "X")
    result = sim.simulate()
    print(f"IN0=X -> OUT0={result.of('OUT0')} (unknowns propagate, rails hold)")
    print(f"        VDD={result.of('VDD')}  GND={result.of('GND')}")


if __name__ == "__main__":
    main()
