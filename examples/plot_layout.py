#!/usr/bin/env python3
"""Plot a layout: ASCII to the terminal, SVG to a file.

Cifplot -- the slowest extractor in Table 5-2 -- earned its keep as a
plotter; this is our version.  The ASCII view marks transistor channels
(T), buried contacts (B) and cuts (X) so you can eyeball exactly what
the extractor will find.

Run:  python examples/plot_layout.py [out.svg]
"""

import sys

from repro.plot import ascii_plot, plot_legend, svg_plot
from repro.workloads import nand2


def main() -> None:
    layout = nand2()
    print("=== NAND gate artwork ===")
    print(plot_legend())
    print(ascii_plot(layout, width=48))

    target = sys.argv[1] if len(sys.argv) > 1 else "/tmp/nand2.svg"
    svg_plot(layout, target)
    print(f"SVG written to {target}")


if __name__ == "__main__":
    main()
