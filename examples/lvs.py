#!/usr/bin/env python3
"""Layout vs schematic: the wirelist-comparator use case of section 1.

"If a circuit's schematic diagram is available to the designer, it can
be compared to the extracted circuit: if the two are equivalent, the
layout corresponds to the original circuit."  Here the designer's
schematic is entered programmatically and checked against extraction --
once against the correct layout, once against a subtly wrong schematic.

Run:  python examples/lvs.py
"""

from repro import extract
from repro.schematic import Schematic, lvs
from repro.workloads import inverter_rows, nand2


def main() -> None:
    print("=== NAND gate ===")
    layout = extract(nand2())
    good = Schematic("nand2").nand(["B", "A"], "OUT")
    report = lvs(layout, good)
    print(f"schematic nand(B, A) vs layout: "
          f"{'MATCH' if report.equivalent else 'MISMATCH'}")

    flipped = Schematic("nand2-flipped").nand(["A", "B"], "OUT")
    report = lvs(layout, flipped)
    print(
        f"schematic nand(A, B) vs layout: "
        f"{'MATCH' if report.equivalent else 'MISMATCH'} "
        f"(series stacking order is part of the topology)"
    )

    print()
    print("=== 3-stage buffer chain ===")
    chain = extract(inverter_rows(1, 3))
    sch = Schematic("chain3")
    sch.inverter("IN0", "n1")
    sch.inverter("n1", "n2")
    sch.inverter("n2", "OUT0")
    report = lvs(chain, sch, ports=("IN0", "OUT0", "VDD", "GND"))
    print(f"3 inverters vs layout: {'MATCH' if report.equivalent else 'MISMATCH'}")

    wrong = Schematic("chain2")
    wrong.inverter("IN0", "n1")
    wrong.inverter("n1", "OUT0")
    report = lvs(chain, wrong, ports=("IN0", "OUT0", "VDD", "GND"))
    print(
        f"2 inverters vs layout: "
        f"{'MATCH' if report.equivalent else 'MISMATCH'} ({report.reason})"
    )


if __name__ == "__main__":
    main()
