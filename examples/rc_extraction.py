#!/usr/bin/env python3
"""RC post-processing from extracted net geometry.

ACE deliberately computes no capacitances or resistances itself -- "it
was undesirable to embed any fixed notion of a circuit model into the
extractor code" -- but with geometry output enabled, a post-processor
has everything it needs.  This example extracts an inverter chain with
geometry, estimates per-net parasitics, and shows the RC delay budget
growing along the chain's output wires.

Run:  python examples/rc_extraction.py
"""

from repro import extract
from repro.analysis import ProcessModel, estimate_rc
from repro.workloads import inverter_rows


def main() -> None:
    layout = inverter_rows(1, 6)
    circuit = extract(layout, keep_geometry=True)
    model = ProcessModel()  # ~2.5um NMOS unit values
    rc = estimate_rc(circuit, model)

    print("per-net parasitics (inverter chain, 6 stages):")
    print(f"{'net':12s} {'C (fF)':>8s} {'R (ohm)':>9s} {'RC (ps)':>9s}  layers")
    for net in circuit.nets:
        entry = rc.get(net.index)
        if entry is None:
            continue
        tau_ps = entry.capacitance_ff * entry.resistance_ohm / 1000.0
        layers = ", ".join(
            f"{layer}:{area:.0f}um2"
            for layer, area in sorted(entry.area_by_layer.items())
        )
        print(
            f"{net.label:12s} {entry.capacitance_ff:8.2f} "
            f"{entry.resistance_ohm:9.2f} {tau_ps:9.3f}  {layers}"
        )

    total_c = sum(e.capacitance_ff for e in rc.values())
    print(f"\ntotal node capacitance: {total_c:.1f} fF")
    gnd = circuit.net_by_name("GND")
    vdd = circuit.net_by_name("VDD")
    print(
        f"rail capacitance: VDD {rc[vdd.index].capacitance_ff:.1f} fF, "
        f"GND {rc[gnd.index].capacitance_ff:.1f} fF"
    )


if __name__ == "__main__":
    main()
