#!/usr/bin/env python3
"""The extract - check - fix loop the paper's conclusion describes.

"It is not unusual to see a user with a 5,000 transistor chip go through
a few iterations of extracting, simulating, and fixing bugs during a
single two-hour session."  This example plays one such session: a layout
with three planted bugs is extracted and statically checked; each
iteration fixes what the checker found and re-extracts.

Run:  python examples/design_iteration.py
"""

from repro import extract
from repro.analysis import static_check
from repro.cif import Label, Layout
from repro.geometry import Box


def draw(fix_ratio: bool, fix_short: bool, fix_gate: bool) -> Layout:
    """A two-inverter layout with up to three planted bugs.

    Bug 1 (ratio): the first inverter's pullup is drawn 4 lambda long
    instead of 8, halving the 4:1 ratio restoring logic needs.
    Bug 2 (short): a leftover metal strap ties OUT2's metal to GND.
    Bug 3 (gate): the second pulldown's input poly is drawn 1 lambda
    short of its contact, leaving the gate floating.
    """
    lam = 250

    def box(symbol, layer, x1, y1, x2, y2):
        symbol.add_box(layer, Box(x1 * lam, y1 * lam, x2 * lam, y2 * lam))

    layout = Layout()
    top = layout.top
    for column, (fix_r, fix_g) in enumerate(
        [(fix_ratio, True), (True, fix_gate)]
    ):
        x = column * 14
        # Diffusion spine, rails, contacts.
        box(top, "ND", x + 0, 1, x + 2, 29)
        box(top, "NM", x - 4, 0, x + 6, 4)
        box(top, "NC", x + 0, 1, x + 2, 3)
        box(top, "NM", x - 4, 26, x + 6, 30)
        box(top, "NC", x + 0, 27, x + 2, 29)
        # Pulldown gate with its input contact from metal.
        gate_left = x - 4 if fix_g else x - 1
        box(top, "NP", gate_left, 6, x + 6, 8)
        box(top, "NP", x - 4, 6, x - 2, 12)  # poly tab up to the contact
        box(top, "NC", x - 4, 9, x - 2, 11)
        box(top, "NM", x - 5, 8, x - 1, 12)
        # Buried tie and depletion load.
        box(top, "NP", x + 0, 13, x + 2, 16)
        box(top, "NB", x + 0, 13, x + 2, 16)
        load_top = 24 if fix_r else 20
        box(top, "NP", x - 1, 16, x + 3, load_top)
        box(top, "NI", x - 2, 15, x + 4, load_top + 1)
        # Output metal.
        box(top, "NC", x + 0, 9, x + 2, 11)
        box(top, "NM", x + 0, 8, x + 10, 12)
        top.add_label(Label(f"OUT{column + 1}", (x + 8) * lam, 10 * lam, "NM"))
        top.add_label(Label("VDD", (x + 1) * lam, 28 * lam, "NM"))
        top.add_label(Label("GND", (x + 1) * lam, 2 * lam, "NM"))
        top.add_label(Label(f"IN{column + 1}", (x - 4) * lam, 10 * lam, "NM"))
    if not fix_short:
        # The leftover strap: OUT2 metal down into the GND rail.
        box(top, "NM", 16, 2, 18, 9)
    return layout


def iteration(n: int, **fixes) -> int:
    layout = draw(**fixes)
    circuit = extract(layout)
    report = static_check(circuit)
    print(f"--- iteration {n}: extract ({len(circuit.devices)} devices) "
          f"and check ---")
    findings = report.errors + report.warnings
    interesting = [
        d for d in findings if d.rule not in ("floating-gate",)
    ] + [
        d for d in findings
        if d.rule == "floating-gate"
        and not any(f"IN" in name for name in _gate_names(circuit, d))
    ]
    if not interesting:
        print("  clean!  ready for simulation")
    for diag in interesting:
        print(f"  {diag.severity.value}: [{diag.rule}] {diag.message}")
    return len(interesting)


def _gate_names(circuit, diag):
    if diag.net is None:
        return []
    for net in circuit.nets:
        if net.index == diag.net:
            return net.names
    return []


def main() -> None:
    print("a two-hour session, compressed:")
    print()
    iteration(1, fix_ratio=False, fix_short=False, fix_gate=False)
    print("\n  ... fix the shorting strap found above ...\n")
    iteration(2, fix_ratio=False, fix_short=True, fix_gate=False)
    print("\n  ... lengthen the weak pullup, reconnect the gate ...\n")
    remaining = iteration(3, fix_ratio=True, fix_short=True, fix_gate=True)
    assert remaining == 0


if __name__ == "__main__":
    main()
