#!/usr/bin/env python3
"""Table 5-2 in miniature: three extractors, one chip, one netlist.

Runs ACE (edge-based scanline), the Partlist-style raster scanner, and
the Cifplot-style region merger over the same synthetic chip, times each,
and proves all three produce equivalent netlists.

Run:  python examples/compare_extractors.py [chip] [scale]
"""

import sys
import time

from repro import extract
from repro.baselines import extract_polyflat, extract_raster
from repro.wirelist import circuit_to_flat, compare_netlists
from repro.workloads import build_chip


def main() -> None:
    chip = sys.argv[1] if len(sys.argv) > 1 else "cherry"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    layout = build_chip(chip, scale)

    results = {}
    for name, extractor in (
        ("ACE (edge-based)", extract),
        ("Partlist-style (raster)", extract_raster),
        ("Cifplot-style (region merge)", extract_polyflat),
    ):
        started = time.perf_counter()
        circuit = extractor(layout)
        seconds = time.perf_counter() - started
        results[name] = (circuit, seconds)
        print(
            f"{name:30s} {len(circuit.devices):5d} devices  "
            f"{len(circuit.nets):5d} nets  {seconds:7.2f}s"
        )

    baseline_name = "ACE (edge-based)"
    reference = circuit_to_flat(results[baseline_name][0])
    print()
    for name, (circuit, seconds) in results.items():
        if name == baseline_name:
            continue
        report = compare_netlists(reference, circuit_to_flat(circuit))
        slowdown = seconds / results[baseline_name][1]
        verdict = "EQUIVALENT" if report.equivalent else f"DIFFERS ({report.reason})"
        print(f"vs {name}: {verdict}, {slowdown:.1f}x slower than ACE")


if __name__ == "__main__":
    main()
