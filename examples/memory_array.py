#!/usr/bin/env python3
"""A memory chip, extracted flat and hierarchically.

The testram result of HEXT Table 5-1 in miniature: a regular RAM-style
array is the hierarchical extractor's best case, because one cell (and
one row, and one block) is extracted once and reused everywhere, while
the flat extractor must chew through every instance.

Run:  python examples/memory_array.py [scale]
"""

import sys
import time

from repro.core import extract_report
from repro.hext import hext_extract
from repro.wirelist import circuit_to_flat, compare_netlists
from repro.workloads import build_chip


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    layout = build_chip("testram", scale)

    print(f"testram analogue at scale {scale:g}")
    print()

    started = time.perf_counter()
    flat_report = extract_report(layout)
    flat_seconds = time.perf_counter() - started
    flat = flat_report.circuit
    print(
        f"flat ACE:  {len(flat.devices)} devices, {len(flat.nets)} nets "
        f"in {flat_seconds:.2f}s "
        f"({flat_report.stats.stops} scanline stops, "
        f"{flat_report.stats.boxes_in} boxes)"
    )

    result = hext_extract(layout)
    stats = result.stats
    print(
        f"HEXT:      extraction {stats.frontend_seconds + stats.backend_seconds:.2f}s "
        f"({stats.flat_calls} flat calls, {stats.compose_calls} composes, "
        f"{stats.memo_hits} window reuses)"
    )

    hier = result.circuit  # flatten for comparison (linear in devices)
    print(f"           flatten to netlist: {stats.resolve_seconds:.2f}s")

    report = compare_netlists(circuit_to_flat(flat), circuit_to_flat(hier))
    print(f"netlists equivalent: {report.equivalent}")
    speedup = flat_seconds / (stats.frontend_seconds + stats.backend_seconds)
    print(f"hierarchical extraction speedup: {speedup:.1f}x")


if __name__ == "__main__":
    main()
