#!/usr/bin/env python3
"""HEXT Figures 2-1 / 2-2: four inverters, hierarchically.

Builds the 2x2 inverter arrangement of Figure 2-1 (as pair-of-pairs, the
way Figure 2-2's windows nest), extracts it hierarchically, and prints
the hierarchical wirelist: Window1 holds the inverter extracted once,
Window2 composes two of them, Window3 two of those.

Run:  python examples/hierarchical.py
"""

from repro import extract
from repro.hext import hext_extract
from repro.hext.wirelist import to_hierarchical_wirelist
from repro.wirelist import (
    circuit_to_flat,
    compare_netlists,
    flatten,
    parse_wirelist,
    write_wirelist,
)
from repro.workloads import INVERTER_SIZE, LayoutBuilder, build_inverter_cell


def four_inverters():
    builder = LayoutBuilder()
    cell = build_inverter_cell(builder)
    width, height = INVERTER_SIZE
    pair = builder.new_symbol()
    pair.call(cell, 0, 0)
    pair.call(cell, width, 0)
    quad = builder.new_symbol()
    quad.call(pair, 0, 0)
    quad.call(pair, 0, height + 2)
    builder.top.call(quad, 0, 0)
    return builder.done()


def main() -> None:
    layout = four_inverters()
    result = hext_extract(layout)
    stats = result.stats

    print("=== window statistics ===")
    print(f"windows considered:   {stats.windows_seen}")
    print(f"unique windows:       {stats.unique_windows}")
    print(f"redundant (memo):     {stats.memo_hits}")
    print(f"flat extractor calls: {stats.flat_calls}  <- one inverter, once")
    print(f"compose calls:        {stats.compose_calls}")
    print()

    wirelist = to_hierarchical_wirelist(result, name="four-inverters")
    text = write_wirelist(wirelist)
    print("=== hierarchical wirelist (Figure 2-2 format) ===")
    print(text)

    # Flatten the wirelist text and verify against flat extraction.
    recovered = flatten(parse_wirelist(text))
    reference = circuit_to_flat(extract(layout))
    report = compare_netlists(reference, recovered)
    print(f"flattened wirelist equivalent to flat extraction: {report.equivalent}")


if __name__ == "__main__":
    main()
